// Randomized construct-sequence fuzzing: programs built from random
// worksharing loops, barriers, criticals, atomics, singles and reductions
// must produce the exact host-model result in every execution mode and
// slipstream configuration, with protocol invariants intact.
//
// This is the broadest end-to-end property in the suite: whatever the
// A-streams do (skip, prefetch, diverge in their private values), the
// committed results must match a simple sequential model.
#include <gtest/gtest.h>

#include <vector>

#include "rt/shared.hpp"
#include "sim/rng.hpp"
#include "tests/helpers.hpp"

namespace ssomp::rt {
namespace {

using front::ScheduleClause;
using front::ScheduleKind;
using test::Harness;

struct FuzzCase {
  std::uint64_t seed;
  ExecutionMode mode;
  slip::SlipstreamConfig slip;
  int ncmp = 4;
};

std::string fuzz_name(const ::testing::TestParamInfo<FuzzCase>& info) {
  std::string s = "seed" + std::to_string(info.param.seed);
  s += "_n" + std::to_string(info.param.ncmp);
  s += "_";
  s += to_string(info.param.mode);
  if (info.param.mode == ExecutionMode::kSlipstream) {
    s += info.param.slip.type == slip::SyncType::kLocal ? "_L" : "_G";
    s += std::to_string(info.param.slip.tokens);
  }
  return s;
}

class FuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzTest, RandomProgramMatchesHostModel) {
  const FuzzCase& fc = GetParam();
  constexpr long kN = 512;
  constexpr int kOps = 24;

  RuntimeOptions opts;
  opts.mode = fc.mode;
  opts.slip = fc.slip;
  Harness h(fc.ncmp, opts);
  SharedArray<double> data(*h.runtime, kN, "fuzz.data");
  SharedVar<double> acc(*h.runtime, "fuzz.acc");
  std::vector<double> model(kN, 0.0);
  double model_acc = 0.0;
  double reduce_out = 0.0;
  double model_reduce = 0.0;

  // The op sequence is derived deterministically from the seed, so the
  // simulated program and the host model execute the same recipe.
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      sim::Rng rng(fc.seed);
      for (int op = 0; op < kOps; ++op) {
        const auto kind = rng.next_below(6);
        const double v =
            1.0 + static_cast<double>(rng.next_below(7));
        ScheduleClause sched;
        switch (rng.next_below(3)) {
          case 0: sched.kind = ScheduleKind::kStatic; break;
          case 1:
            sched.kind = ScheduleKind::kDynamic;
            sched.chunk = 1 + static_cast<long>(rng.next_below(16));
            break;
          default:
            sched.kind = ScheduleKind::kGuided;
            sched.chunk = 1 + static_cast<long>(rng.next_below(4));
            break;
        }
        switch (kind) {
          case 0:  // axpy-style loop
            t.for_loop(0, kN, sched, [&](long i) {
              data.write(t, static_cast<std::size_t>(i),
                         data.read(t, static_cast<std::size_t>(i)) + v);
            });
            break;
          case 1:  // scaling loop, nowait + explicit barrier
            t.for_loop(
                0, kN, sched,
                [&](long i) {
                  data.write(t, static_cast<std::size_t>(i),
                             data.read(t, static_cast<std::size_t>(i)) *
                                 1.5);
                },
                /*nowait=*/true);
            t.barrier();
            break;
          case 2:  // critical accumulation
            t.critical([&] {
              if (!t.is_a_stream()) {
                acc.write(t, acc.read(t) + v);
              }
            });
            t.barrier();
            break;
          case 3:  // atomic accumulation
            acc.atomic_add(t, v);
            t.barrier();
            break;
          case 4: {  // single writes one slot
            // Slot drawn outside the body so every thread's generator
            // stays in lockstep (only one thread executes the body).
            const auto slot = static_cast<std::size_t>(rng.next_below(kN));
            t.single([&] { data.write(t, slot, v); });
            break;
          }
          default: {  // reduction over the array
            double local = 0.0;
            t.for_loop(
                0, kN, sched,
                [&](long i) {
                  local += data.read(t, static_cast<std::size_t>(i));
                },
                /*nowait=*/true);
            const double total = t.reduce_sum(local);
            if (t.id() == 0 && !t.is_a_stream()) reduce_out = total;
            break;
          }
        }
      }
    });
  });

  // Host model of the same recipe (single-threaded; criticals/atomics
  // contribute once per participating thread).
  const int nthreads =
      fc.mode == ExecutionMode::kDouble ? 2 * fc.ncmp : fc.ncmp;
  {
    sim::Rng rng(fc.seed);
    for (int op = 0; op < kOps; ++op) {
      const auto kind = rng.next_below(6);
      const double v = 1.0 + static_cast<double>(rng.next_below(7));
      // Mirror the schedule draws (dynamic/guided draw a chunk size too).
      const auto schedsel = rng.next_below(3);
      if (schedsel == 1) {
        (void)rng.next_below(16);
      } else if (schedsel == 2) {
        (void)rng.next_below(4);
      }
      switch (kind) {
        case 0:
          for (auto& x : model) x += v;
          break;
        case 1:
          for (auto& x : model) x *= 1.5;
          break;
        case 2:
          model_acc += v * nthreads;
          break;
        case 3:
          model_acc += v * nthreads;
          break;
        case 4:
          model[rng.next_below(kN)] = v;
          break;
        default: {
          double total = 0.0;
          for (double x : model) total += x;
          model_reduce = total;
          break;
        }
      }
    }
  }

  // Iteration-disjoint writes are exact; reductions are order-sensitive.
  for (long i = 0; i < kN; ++i) {
    EXPECT_DOUBLE_EQ(data.host(static_cast<std::size_t>(i)),
                     model[static_cast<std::size_t>(i)])
        << "index " << i;
  }
  EXPECT_DOUBLE_EQ(acc.host(), model_acc);
  if (model_reduce != 0.0) {
    EXPECT_NEAR(reduce_out, model_reduce,
                1e-9 * std::abs(model_reduce) + 1e-12);
  }
  EXPECT_TRUE(h.machine->mem().check_invariants());
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  const auto g0 = slip::SlipstreamConfig::zero_token_global();
  const auto l1 = slip::SlipstreamConfig::one_token_local();
  const auto l2 = slip::SlipstreamConfig{.type = slip::SyncType::kLocal,
                                         .tokens = 2};
  for (std::uint64_t seed : {11u, 23u, 37u, 59u, 71u, 83u}) {
    cases.push_back({seed, ExecutionMode::kSingle, g0});
    cases.push_back({seed, ExecutionMode::kDouble, g0});
    cases.push_back({seed, ExecutionMode::kSlipstream, g0});
    cases.push_back({seed, ExecutionMode::kSlipstream, l1});
    cases.push_back({seed, ExecutionMode::kSlipstream, l2});
  }
  // Machine-size variants: tiny (1 CMP) and wider (8 CMPs) teams.
  for (std::uint64_t seed : {101u, 211u}) {
    cases.push_back({seed, ExecutionMode::kSlipstream, l1, 1});
    cases.push_back({seed, ExecutionMode::kSlipstream, g0, 8});
    cases.push_back({seed, ExecutionMode::kDouble, g0, 8});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Programs, FuzzTest,
                         ::testing::ValuesIn(fuzz_cases()), fuzz_name);

}  // namespace
}  // namespace ssomp::rt
