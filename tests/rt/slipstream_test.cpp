// Slipstream-specific runtime behaviour (paper §2, §3).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rt/shared.hpp"
#include "tests/helpers.hpp"

namespace ssomp::rt {
namespace {

using front::ScheduleClause;
using front::ScheduleKind;
using test::Harness;

RuntimeOptions slip_opts(slip::SlipstreamConfig cfg) {
  RuntimeOptions o;
  o.mode = ExecutionMode::kSlipstream;
  o.slip = cfg;
  return o;
}

TEST(SlipstreamTest, AStreamSharesIdWithRStream) {
  Harness h(4, ExecutionMode::kSlipstream);
  std::map<int, std::vector<int>> ids_by_cpu;  // cpu -> ids seen
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      ids_by_cpu[t.cpu().id()].push_back(t.id());
    });
  });
  for (int node = 0; node < 4; ++node) {
    ASSERT_EQ(ids_by_cpu[2 * node].size(), 1u);
    ASSERT_EQ(ids_by_cpu[2 * node + 1].size(), 1u);
    EXPECT_EQ(ids_by_cpu[2 * node][0], ids_by_cpu[2 * node + 1][0])
        << "A-stream must share its R-stream's thread id";
    EXPECT_EQ(ids_by_cpu[2 * node][0], node);
  }
}

TEST(SlipstreamTest, AStreamStoresNeverCommit) {
  Harness h(2, ExecutionMode::kSlipstream);
  SharedArray<double> data(*h.runtime, 64, "d");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(0, 64, ScheduleClause{}, [&](long i) {
        // Both streams execute this; the A-stream writes a poison value
        // which must never land in host memory.
        data.write(t, static_cast<std::size_t>(i),
                   t.is_a_stream() ? -999.0 : static_cast<double>(i));
      });
    });
  });
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(data.host(i), static_cast<double>(i)) << "index " << i;
  }
}

TEST(SlipstreamTest, ConvertedStoresCountedG0) {
  // Zero-token global keeps A and R in the same session, so A-stores are
  // converted to exclusive prefetches rather than dropped (§2, §5.1).
  Harness h(2, slip_opts(slip::SlipstreamConfig::zero_token_global()));
  SharedArray<double> data(*h.runtime, 512, "d");
  h.run([&](SerialCtx& sc) {
    for (int r = 0; r < 3; ++r) {
      sc.parallel([&](ThreadCtx& t) {
        t.for_loop(0, 512, ScheduleClause{}, [&](long i) {
          data.write(t, static_cast<std::size_t>(i), 1.0);
        });
      });
    }
  });
  const auto& s = h.runtime->slip_stats();
  EXPECT_GT(s.converted_stores, 0u);
  // Conversion is also bounded by the "no resource contention" condition:
  // a dense store burst exceeds the outstanding-fill budget, so some
  // stores are dropped rather than converted.
  EXPECT_GT(s.dropped_stores, 0u);
}

TEST(SlipstreamTest, StoresDroppedWhenAheadL1) {
  // One-token local lets the A-stream run a session ahead, where stores
  // are dropped instead of converted.
  Harness h(2, slip_opts(slip::SlipstreamConfig::one_token_local()));
  SharedArray<double> data(*h.runtime, 512, "d");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      for (int phase = 0; phase < 4; ++phase) {
        t.for_loop(0, 512, ScheduleClause{}, [&](long i) {
          data.write(t, static_cast<std::size_t>(i), 1.0);
        });
      }
    });
  });
  EXPECT_GT(h.runtime->slip_stats().dropped_stores, 0u);
}

TEST(SlipstreamTest, TokenAccountingBalances) {
  Harness h(4, slip_opts(slip::SlipstreamConfig::zero_token_global()));
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      for (int b = 0; b < 5; ++b) {
        t.compute(100);
        t.barrier();
      }
    });
  });
  const auto& s = h.runtime->slip_stats();
  // Each R inserts per barrier (5 explicit + 1 region end) and each A
  // consumes the same number: 4 pairs x 6.
  EXPECT_EQ(s.tokens_consumed, 24u);
  EXPECT_EQ(s.tokens_inserted, 24u);
  EXPECT_EQ(s.recoveries, 0u);
}

TEST(SlipstreamTest, DynamicChunksForwardedExactly) {
  // §3.2.2: the A-stream executes exactly the chunks its R-stream was
  // assigned, in order.
  Harness h(4, ExecutionMode::kSlipstream);
  std::map<int, std::vector<std::pair<long, long>>> r_chunks, a_chunks;
  ScheduleClause dyn;
  dyn.kind = ScheduleKind::kDynamic;
  dyn.chunk = 7;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_chunks(0, 300, dyn, [&](long lo, long hi) {
        if (t.is_a_stream()) {
          a_chunks[t.id()].push_back({lo, hi});
        } else {
          r_chunks[t.id()].push_back({lo, hi});
        }
      });
    });
  });
  ASSERT_FALSE(r_chunks.empty());
  for (const auto& [tid, chunks] : r_chunks) {
    EXPECT_EQ(a_chunks[tid], chunks) << "thread " << tid;
  }
  EXPECT_GT(h.runtime->slip_stats().forwarded_chunks, 0u);
}

TEST(SlipstreamTest, RegionDirectiveSelectsSync) {
  Harness h(2, slip_opts(slip::SlipstreamConfig::zero_token_global()));
  slip::SlipstreamConfig seen;
  h.run([&](SerialCtx& sc) {
    sc.parallel(
        [&](ThreadCtx& t) {
          if (t.id() == 0 && !t.is_a_stream()) {
            seen = t.runtime().team().slip;
          }
        },
        "SLIPSTREAM(LOCAL_SYNC, 2)");
  });
  EXPECT_EQ(seen.type, slip::SyncType::kLocal);
  EXPECT_EQ(seen.tokens, 2);
}

TEST(SlipstreamTest, SerialDirectiveSetsGlobalUntilOverridden) {
  Harness h(2, ExecutionMode::kSlipstream);
  std::vector<slip::SyncType> seen;
  h.run([&](SerialCtx& sc) {
    sc.slipstream_directive("SLIPSTREAM(LOCAL_SYNC, 1)");
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0 && !t.is_a_stream()) {
        seen.push_back(t.runtime().team().slip.type);
      }
    });
    // Region-level override applies once; global restored after.
    sc.parallel(
        [&](ThreadCtx& t) {
          if (t.id() == 0 && !t.is_a_stream()) {
            seen.push_back(t.runtime().team().slip.type);
          }
        },
        "SLIPSTREAM(GLOBAL_SYNC)");
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0 && !t.is_a_stream()) {
        seen.push_back(t.runtime().team().slip.type);
      }
    });
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], slip::SyncType::kLocal);
  EXPECT_EQ(seen[1], slip::SyncType::kGlobal);
  EXPECT_EQ(seen[2], slip::SyncType::kLocal);
}

TEST(SlipstreamTest, EnvNoneFallsBackToSingleTasking) {
  RuntimeOptions o;
  o.mode = ExecutionMode::kSlipstream;
  o.slip = {.type = slip::SyncType::kRuntime, .tokens = 0};
  o.omp_slipstream_env = "NONE";
  Harness h(4, o);
  int nthreads = 0;
  int a_seen = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      nthreads = t.nthreads();
      if (t.is_a_stream()) ++a_seen;
    });
  });
  EXPECT_EQ(nthreads, 4);  // one task per CMP
  EXPECT_EQ(a_seen, 0);    // no A-streams launched
}

TEST(SlipstreamTest, EnvSelectsRuntimeSync) {
  RuntimeOptions o;
  o.mode = ExecutionMode::kSlipstream;
  o.slip = {.type = slip::SyncType::kRuntime, .tokens = 0};
  o.omp_slipstream_env = "LOCAL_SYNC,3";
  Harness h(2, o);
  slip::SlipstreamConfig seen;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0 && !t.is_a_stream()) seen = t.runtime().team().slip;
    });
  });
  EXPECT_EQ(seen.type, slip::SyncType::kLocal);
  EXPECT_EQ(seen.tokens, 3);
}

TEST(SlipstreamTest, DivergenceDetectedAndRecovered) {
  RuntimeOptions o;
  o.mode = ExecutionMode::kSlipstream;
  o.slip = slip::SlipstreamConfig::one_token_local();
  o.divergence_threshold = 3;
  Harness h(2, o);
  int a_completions = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.is_a_stream()) {
        // A "diverged" A-stream: spins on private work and never reaches
        // a barrier. check_recovery() is its only exit.
        while (true) {
          t.check_recovery();
          t.compute(200);
        }
      }
      for (int b = 0; b < 10; ++b) {
        t.compute(100);
        t.barrier();
      }
    });
    // The next region must run normally: A-streams rejoin after recovery.
    sc.parallel([&](ThreadCtx& t) {
      if (t.is_a_stream()) ++a_completions;
      t.barrier();
    });
  });
  EXPECT_EQ(h.runtime->slip_stats().recoveries, 2u);  // one per pair
  EXPECT_EQ(a_completions, 2);
}

TEST(SlipstreamTest, DivergenceInTokenWaitIsPoisoned) {
  RuntimeOptions o;
  o.mode = ExecutionMode::kSlipstream;
  o.slip = slip::SlipstreamConfig::zero_token_global();
  o.divergence_threshold = 2;
  Harness h(2, o);
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.is_a_stream()) {
        // The A-stream consumes more barriers than the R-stream will ever
        // insert tokens for (10 in-loop + 1 region end), so it blocks in
        // token wait until the divergence backstop poisons it.
        for (int b = 0; b < 12; ++b) t.barrier();
        FAIL() << "A-stream escaped a poisoned wait";
      }
      for (int b = 0; b < 10; ++b) {
        t.compute(1000);
        t.barrier();
      }
    });
  });
  EXPECT_GE(h.runtime->slip_stats().recoveries, 1u);
}

TEST(SlipstreamTest, RecoveryDoesNotLeakMailboxIntoNextRegion) {
  // Regression: a recovery that unwinds the A-stream mid-dynamic-loop
  // leaves forwarded-but-unconsumed scheduling decisions queued. They
  // must not survive into the next region, where they would pair with
  // the wrong syscall tokens and shift every subsequent chunk.
  RuntimeOptions o;
  o.mode = ExecutionMode::kSlipstream;
  o.slip = slip::SlipstreamConfig::one_token_local();
  o.fault = {.kind = slip::FaultKind::kRecoverInSyscall,
             .node = 0,
             .visit = 1};
  Harness h(2, o);
  ScheduleClause dyn;
  dyn.kind = ScheduleKind::kDynamic;
  dyn.chunk = 5;
  std::map<int, std::vector<std::pair<long, long>>> r_chunks, a_chunks;
  h.run([&](SerialCtx& sc) {
    // Region 1: the injected fault forces recovery while the A-stream is
    // blocked in the syscall wait, abandoning queued decisions.
    sc.parallel([&](ThreadCtx& t) {
      t.for_chunks(0, 200, dyn, [&](long, long) { t.compute(50); });
    });
    // Region 2: forwarding must be exact again.
    sc.parallel([&](ThreadCtx& t) {
      t.for_chunks(0, 200, dyn, [&](long lo, long hi) {
        if (t.is_a_stream()) {
          a_chunks[t.id()].push_back({lo, hi});
        } else {
          r_chunks[t.id()].push_back({lo, hi});
        }
      });
    });
  });
  EXPECT_EQ(h.runtime->fault_injector().fired(), 1u);
  EXPECT_GE(h.runtime->slip_stats().recoveries, 1u);
  ASSERT_FALSE(r_chunks.empty());
  for (const auto& [tid, chunks] : r_chunks) {
    EXPECT_EQ(a_chunks[tid], chunks) << "thread " << tid;
  }
  EXPECT_TRUE(h.runtime->auditor().ok())
      << (h.runtime->auditor().violations().empty()
              ? ""
              : h.runtime->auditor().violations().front());
}

TEST(SlipstreamTest, InjectedStarveRecoversViaBackstop) {
  // A starved token leaves the A-stream one session short; the divergence
  // machinery (threshold probe or end-of-run backstop) must rescue it and
  // the next region must run normally.
  RuntimeOptions o;
  o.mode = ExecutionMode::kSlipstream;
  o.slip = slip::SlipstreamConfig::zero_token_global();
  o.fault = {.kind = slip::FaultKind::kStarveToken, .node = 0, .visit = 2};
  Harness h(2, o);
  int a_completions = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      for (int b = 0; b < 4; ++b) {
        t.compute(100);
        t.barrier();
      }
    });
    sc.parallel([&](ThreadCtx& t) {
      if (t.is_a_stream()) ++a_completions;
      t.barrier();
    });
  });
  EXPECT_EQ(h.runtime->fault_injector().fired(), 1u);
  EXPECT_EQ(a_completions, 2);
  EXPECT_TRUE(h.runtime->auditor().ok())
      << (h.runtime->auditor().violations().empty()
              ? ""
              : h.runtime->auditor().violations().front());
}

TEST(SlipstreamTest, SingleSkippedByAStream) {
  Harness h(2, ExecutionMode::kSlipstream);
  int a_in_single = 0;
  int executions = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.single([&] {
        ++executions;
        if (t.is_a_stream()) ++a_in_single;
      });
    });
  });
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(a_in_single, 0);
}

TEST(SlipstreamTest, CriticalPolicyExecutesAStreamUnlocked) {
  RuntimeOptions o;
  o.mode = ExecutionMode::kSlipstream;
  o.slip = slip::SlipstreamConfig::zero_token_global();
  o.policies.a_executes_critical = true;
  Harness h(2, o);
  int a_in_critical = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.critical([&] {
        if (t.is_a_stream()) ++a_in_critical;
      });
    });
  });
  EXPECT_EQ(a_in_critical, 2);  // both A-streams executed the body
}

TEST(SlipstreamTest, ReduceSyncAGivesFreshResult) {
  Harness h(2, slip_opts(slip::SlipstreamConfig::one_token_local()));
  std::vector<double> a_values;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      const double r = t.reduce_sum(1.0, /*sync_a=*/true);
      if (t.is_a_stream()) a_values.push_back(r);
    });
  });
  ASSERT_EQ(a_values.size(), 2u);
  for (double v : a_values) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(SlipstreamTest, MemStatsShowAStreamPrefetchTraffic) {
  Harness h(4, slip_opts(slip::SlipstreamConfig::zero_token_global()));
  SharedArray<double> data(*h.runtime, 4096, "d");
  h.run([&](SerialCtx& sc) {
    for (int r = 0; r < 2; ++r) {
      sc.parallel([&](ThreadCtx& t) {
        t.for_loop(0, 4096, ScheduleClause{}, [&](long i) {
          data.write(t, static_cast<std::size_t>(i),
                     data.read(t, static_cast<std::size_t>(i)) + 1.0);
        });
      });
    }
  });
  EXPECT_GT(h.machine->mem().stats().prefetches, 0u);
  h.machine->mem().finalize_classification();
  EXPECT_TRUE(h.machine->mem().check_invariants());
}

TEST(SlipstreamTest, ConversionWindowPolicyControlsL1Coverage) {
  // With a strict same-session window the A-stream (one session ahead
  // under one-token local) converts almost nothing; the default window of
  // one session restores exclusive-prefetch coverage.
  auto run_with_window = [](int window) {
    RuntimeOptions o;
    o.mode = ExecutionMode::kSlipstream;
    o.slip = slip::SlipstreamConfig::one_token_local();
    o.policies.conversion_window = window;
    Harness h(2, o);
    SharedArray<double> data(*h.runtime, 2048, "d");
    h.run([&](SerialCtx& sc) {
      sc.parallel([&](ThreadCtx& t) {
        for (int phase = 0; phase < 6; ++phase) {
          t.for_loop(0, 2048, ScheduleClause{}, [&](long i) {
            data.write(t, static_cast<std::size_t>(i), 1.0);
            t.compute(10);
          });
        }
      });
    });
    return h.runtime->slip_stats().converted_stores;
  };
  // The wider window converts strictly more stores (how much more is
  // workload-dependent: it covers the phases where the A-stream holds a
  // one-session lead).
  const auto strict = run_with_window(0);
  const auto window1 = run_with_window(1);
  EXPECT_GT(window1, strict + strict / 4);
}

TEST(SlipstreamTest, DoubleModeScatterPlacement) {
  // Consecutive thread ids must land on different CMPs (OS-style scatter;
  // compact placement would fabricate an affinity guarantee).
  Harness h(4, ExecutionMode::kDouble);
  std::map<int, int> cpu_of_tid;
  h.run([&](SerialCtx& sc) {
    sc.parallel(
        [&](ThreadCtx& t) { cpu_of_tid[t.id()] = t.cpu().id(); });
  });
  ASSERT_EQ(cpu_of_tid.size(), 8u);
  for (int t = 0; t + 1 < 8; ++t) {
    EXPECT_NE(cpu_of_tid[t] / 2, cpu_of_tid[t + 1] / 2)
        << "threads " << t << " and " << t + 1 << " share a CMP";
  }
}

TEST(SlipstreamTest, IfClauseLimitsSlipstreamUse) {
  // §3.3: the directive "can be used in conjunction with conditional IF
  // statements, to limit the use of slipstream when the number of CMPs
  // involved ... exceeds a certain limit". IF(false) serializes the
  // region regardless of mode.
  Harness h(4, ExecutionMode::kSlipstream);
  int serial_runs = 0;
  int team_threads = 0;
  h.run([&](SerialCtx& sc) {
    const bool enough_cmps = h.machine->ncmp() >= 8;  // false here
    sc.parallel(
        [&](ThreadCtx& t) {
          ++serial_runs;
          team_threads = t.nthreads();
        },
        "SLIPSTREAM(GLOBAL_SYNC, 0)", /*if_clause=*/enough_cmps);
  });
  EXPECT_EQ(serial_runs, 1);
  EXPECT_EQ(team_threads, 1);
}

TEST(SlipstreamTest, OddCpusIdleInSingleMode) {
  Harness h(4, ExecutionMode::kSingle);
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) { t.compute(5000); });
  });
  // A-side processors never execute anything in single mode.
  for (int node = 0; node < 4; ++node) {
    EXPECT_EQ(h.machine->cpu(2 * node + 1)
                  .breakdown()
                  .get(sim::TimeCategory::kBusy),
              0u);
  }
}

}  // namespace
}  // namespace ssomp::rt
