// ProgressFlag point-to-point synchronization tests.
#include <gtest/gtest.h>

#include <set>

#include "rt/pointsync.hpp"
#include "rt/shared.hpp"
#include "tests/helpers.hpp"

namespace ssomp::rt {
namespace {

using test::Harness;

TEST(ProgressFlagTest, WaitBlocksUntilPosted) {
  Harness h(2, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  std::vector<int> order;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        t.compute(50000);
        order.push_back(1);
        flag.post(t, 1);
      } else {
        flag.wait_ge(t, 1);
        order.push_back(2);
      }
    });
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ProgressFlagTest, AlreadySatisfiedWaitDoesNotBlock) {
  Harness h(2, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) flag.post(t, 5);
      t.barrier();
      flag.wait_ge(t, 3);  // both threads: value already 5
      EXPECT_EQ(flag.value(), 5);
    });
  });
}

TEST(ProgressFlagTest, MultipleWaitersWithDifferentThresholds) {
  Harness h(4, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  std::vector<int> released;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        for (int v = 1; v <= 3; ++v) {
          t.compute(20000);
          flag.post(t, v);
        }
      } else {
        flag.wait_ge(t, t.id());  // thresholds 1, 2, 3
        released.push_back(t.id());
      }
    });
  });
  EXPECT_EQ(released, (std::vector<int>{1, 2, 3}));
}

TEST(ProgressFlagTest, AStreamSkipsPostAndWait) {
  Harness h(2, ExecutionMode::kSlipstream);
  ProgressFlag flag(*h.runtime, "f");
  int a_passed = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.is_a_stream()) {
        // If the A-stream waited, it would deadlock: the R-streams post
        // only *after* a long compute, and nobody waits for the A.
        flag.wait_ge(t, 99);  // skipped
        ++a_passed;
        return;
      }
      t.compute(10000);
      if (t.id() == 0) flag.post(t, 99);
    });
  });
  EXPECT_EQ(a_passed, 2);
}

TEST(ProgressFlagTest, ParkedWaiterLeavesNoListEntry) {
  // The producer posts long after the consumer exhausted its spin probes
  // (kSpinProbes x kBackoff << 50000 cycles), so the consumer must have
  // parked in the waiter list — and its entry must be gone once released.
  Harness h(2, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        t.compute(50000);
        flag.post(t, 1);
      } else {
        flag.wait_ge(t, 1);
        EXPECT_EQ(flag.waiter_count(), 0u);
      }
    });
  });
  EXPECT_EQ(flag.waiter_count(), 0u);
}

TEST(ProgressFlagTest, SatisfiedThenReblockedWaiterIsNotLeaked) {
  // A waiter that is woken and immediately waits again for a higher
  // value re-enters the list; the wake/re-park cycle must neither lose
  // the second wakeup nor leave duplicate entries behind.
  Harness h(2, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  std::vector<long> observed;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        t.compute(50000);
        flag.post(t, 1);
        t.compute(50000);
        flag.post(t, 2);
      } else {
        flag.wait_ge(t, 1);
        observed.push_back(flag.value());
        flag.wait_ge(t, 2);  // re-parks in the same flag
        observed.push_back(flag.value());
      }
    });
  });
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_GE(observed[0], 1);
  EXPECT_GE(observed[1], 2);
  EXPECT_EQ(flag.waiter_count(), 0u);
}

TEST(ProgressFlagTest, OnePostReleasesAllSatisfiedWaiters) {
  // A single post that satisfies several parked waiters at once must
  // wake every one of them and empty the list (no partial wake, no
  // stale entries for the still-unsatisfied).
  Harness h(4, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  int released = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        t.compute(60000);
        flag.post(t, 3);  // satisfies thresholds 1..3 in one shot
      } else {
        flag.wait_ge(t, t.id());
        ++released;
      }
    });
  });
  EXPECT_EQ(released, 3);
  EXPECT_EQ(flag.waiter_count(), 0u);
}

TEST(ProgressFlagTest, UnsatisfiedWaiterStaysParkedAcrossPost) {
  // A post below a parked waiter's threshold wakes others but must keep
  // that waiter's entry intact for the later post that satisfies it.
  Harness h(4, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  std::vector<int> released;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        t.compute(60000);
        flag.post(t, 1);  // releases only the threshold-1 waiter
        t.compute(60000);
        flag.post(t, 3);  // releases the rest
      } else {
        flag.wait_ge(t, t.id());
        released.push_back(t.id());
      }
    });
  });
  // Thread 1 is released by the first post, strictly before the others;
  // the relative order of waiters freed by the same post is unspecified.
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[0], 1);
  EXPECT_EQ(std::set<int>(released.begin(), released.end()),
            (std::set<int>{1, 2, 3}));
  EXPECT_EQ(flag.waiter_count(), 0u);
}

TEST(ProgressFlagTest, WaitTimeAttributedToLockCategory) {
  Harness h(2, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        t.compute(80000);
        flag.post(t, 1);
      } else {
        flag.wait_ge(t, 1);
      }
    });
  });
  EXPECT_GT(
      h.machine->cpu(2).breakdown().get(sim::TimeCategory::kLock), 60000u);
}

}  // namespace
}  // namespace ssomp::rt
