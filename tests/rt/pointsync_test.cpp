// ProgressFlag point-to-point synchronization tests.
#include <gtest/gtest.h>

#include "rt/pointsync.hpp"
#include "rt/shared.hpp"
#include "tests/helpers.hpp"

namespace ssomp::rt {
namespace {

using test::Harness;

TEST(ProgressFlagTest, WaitBlocksUntilPosted) {
  Harness h(2, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  std::vector<int> order;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        t.compute(50000);
        order.push_back(1);
        flag.post(t, 1);
      } else {
        flag.wait_ge(t, 1);
        order.push_back(2);
      }
    });
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ProgressFlagTest, AlreadySatisfiedWaitDoesNotBlock) {
  Harness h(2, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) flag.post(t, 5);
      t.barrier();
      flag.wait_ge(t, 3);  // both threads: value already 5
      EXPECT_EQ(flag.value(), 5);
    });
  });
}

TEST(ProgressFlagTest, MultipleWaitersWithDifferentThresholds) {
  Harness h(4, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  std::vector<int> released;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        for (int v = 1; v <= 3; ++v) {
          t.compute(20000);
          flag.post(t, v);
        }
      } else {
        flag.wait_ge(t, t.id());  // thresholds 1, 2, 3
        released.push_back(t.id());
      }
    });
  });
  EXPECT_EQ(released, (std::vector<int>{1, 2, 3}));
}

TEST(ProgressFlagTest, AStreamSkipsPostAndWait) {
  Harness h(2, ExecutionMode::kSlipstream);
  ProgressFlag flag(*h.runtime, "f");
  int a_passed = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.is_a_stream()) {
        // If the A-stream waited, it would deadlock: the R-streams post
        // only *after* a long compute, and nobody waits for the A.
        flag.wait_ge(t, 99);  // skipped
        ++a_passed;
        return;
      }
      t.compute(10000);
      if (t.id() == 0) flag.post(t, 99);
    });
  });
  EXPECT_EQ(a_passed, 2);
}

TEST(ProgressFlagTest, WaitTimeAttributedToLockCategory) {
  Harness h(2, ExecutionMode::kSingle);
  ProgressFlag flag(*h.runtime, "f");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() == 0) {
        t.compute(80000);
        flag.post(t, 1);
      } else {
        flag.wait_ge(t, 1);
      }
    });
  });
  EXPECT_GT(
      h.machine->cpu(2).breakdown().get(sim::TimeCategory::kLock), 60000u);
}

}  // namespace
}  // namespace ssomp::rt
