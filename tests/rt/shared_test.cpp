// SharedArray / SharedVar access semantics, including the line-granular
// scan helpers the workloads are built on.
#include <gtest/gtest.h>

#include "rt/shared.hpp"
#include "tests/helpers.hpp"

namespace ssomp::rt {
namespace {

using test::Harness;

TEST(SharedArrayTest, AddressesAreContiguousAndAligned) {
  Harness h(2, ExecutionMode::kSingle);
  SharedArray<double> a(*h.runtime, 100, "a");
  EXPECT_EQ(a.addr(0) % 64, 0u);
  EXPECT_EQ(a.addr(1), a.addr(0) + sizeof(double));
  EXPECT_TRUE(mem::AddrSpace::is_app(a.addr(0)));
  EXPECT_TRUE(mem::AddrSpace::is_app(a.addr(99)));
}

TEST(SharedArrayTest, ScanReadTouchesOneLoadPerLine) {
  Harness h(1, ExecutionMode::kSingle);
  SharedArray<double> a(*h.runtime, 64, "a");  // 64 doubles = 8 lines
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      const auto before = h.machine->mem().stats().loads;
      a.scan_read(t, 0, 64);
      EXPECT_EQ(h.machine->mem().stats().loads - before, 8u);
      // Partial scan crossing two lines.
      const auto mid = h.machine->mem().stats().loads;
      a.scan_read(t, 7, 9);
      EXPECT_EQ(h.machine->mem().stats().loads - mid, 2u);
      // Empty scan touches nothing.
      const auto last = h.machine->mem().stats().loads;
      a.scan_read(t, 5, 5);
      EXPECT_EQ(h.machine->mem().stats().loads - last, 0u);
    });
  });
}

TEST(SharedArrayTest, ScanWriteCommitsForRDropsForA) {
  Harness h(2, ExecutionMode::kSlipstream);
  SharedArray<double> a(*h.runtime, 32, "a");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() != 0) return;
      std::vector<double> vals(16);
      for (int i = 0; i < 16; ++i) {
        vals[static_cast<std::size_t>(i)] =
            t.is_a_stream() ? -1.0 : static_cast<double>(i);
      }
      a.scan_write(t, 0, 16, vals.data());
    });
  });
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.host(i), static_cast<double>(i));
  }
  for (std::size_t i = 16; i < 32; ++i) {
    EXPECT_EQ(a.host(i), 0.0);
  }
}

TEST(SharedArrayTest, SerialAccessSimulatesOnMaster) {
  Harness h(2, ExecutionMode::kSingle);
  SharedArray<double> a(*h.runtime, 8, "a");
  h.run([&](SerialCtx& sc) {
    a.write(sc, 3, 7.5);
    EXPECT_EQ(a.read(sc, 3), 7.5);
  });
  EXPECT_GT(h.machine->mem().stats().stores, 0u);
  EXPECT_EQ(a.host(3), 7.5);
}

TEST(SharedVarTest, OwnLinePerScalar) {
  Harness h(2, ExecutionMode::kSingle);
  SharedVar<double> x(*h.runtime, "x");
  SharedVar<double> y(*h.runtime, "y");
  EXPECT_GE(y.addr() - x.addr(), 64u) << "scalars must not false-share";
}

TEST(SharedArrayTest, BlockDistributionPinsHomes) {
  Harness h(4, ExecutionMode::kSingle);
  // 4 pages worth of doubles, block-distributed over 4 nodes.
  SharedArray<double> a(*h.runtime, 4 * 512, "a", Distribution::kBlock);
  auto& hm = h.machine->mem().home_map();
  EXPECT_EQ(hm.home_of(a.addr(0)), 0);
  EXPECT_EQ(hm.home_of(a.addr(4 * 512 - 1)), 3);
}

}  // namespace
}  // namespace ssomp::rt
