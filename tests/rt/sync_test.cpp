// SpinLock and SenseBarrier tests over simulated CPUs.
#include <gtest/gtest.h>

#include <vector>

#include "mem/memsys.hpp"
#include "rt/sync_primitives.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace ssomp::rt {
namespace {

using sim::TimeCategory;

struct Rig {
  explicit Rig(int ncpus) : ms(mem::MemParams{}, (ncpus + 1) / 2) {
    for (int c = 0; c < ncpus; ++c) {
      engine.add_cpu("p" + std::to_string(c));
    }
  }
  sim::Engine engine;
  mem::AddrSpace addr_space;
  mem::MemorySystem ms;
};

TEST(SpinLockTest, UncontendedAcquireRelease) {
  Rig rig(1);
  SpinLock lock(rig.ms, rig.addr_space);
  rig.engine.cpu(0).start([&] {
    lock.acquire(rig.engine.cpu(0), TimeCategory::kLock);
    EXPECT_TRUE(lock.held());
    lock.release(rig.engine.cpu(0));
    EXPECT_FALSE(lock.held());
  });
  rig.engine.run();
  EXPECT_EQ(lock.acquisitions(), 1u);
  EXPECT_EQ(lock.contended_acquisitions(), 0u);
}

class SpinLockContentionTest : public ::testing::TestWithParam<int> {};

TEST_P(SpinLockContentionTest, MutualExclusionUnderContention) {
  const int ncpus = GetParam();
  Rig rig(ncpus);
  SpinLock lock(rig.ms, rig.addr_space);
  int inside = 0;
  int max_inside = 0;
  long counter = 0;
  sim::Rng rng(3);
  for (int c = 0; c < ncpus; ++c) {
    sim::SimCpu& cpu = rig.engine.cpu(c);
    const auto jitter = static_cast<sim::Cycles>(rng.next_below(300));
    cpu.start([&, c, jitter] {
      sim::SimCpu& me = rig.engine.cpu(c);
      me.consume(jitter, TimeCategory::kBusy);
      for (int i = 0; i < 20; ++i) {
        lock.acquire(me, TimeCategory::kLock);
        ++inside;
        max_inside = std::max(max_inside, inside);
        me.consume(50, TimeCategory::kBusy);  // critical-section work
        ++counter;
        --inside;
        lock.release(me);
        me.consume(30, TimeCategory::kBusy);
      }
    });
  }
  rig.engine.run();
  EXPECT_EQ(max_inside, 1) << "two CPUs inside the critical section";
  EXPECT_EQ(counter, static_cast<long>(ncpus) * 20);
  EXPECT_EQ(lock.acquisitions(), static_cast<std::uint64_t>(ncpus) * 20);
  EXPECT_FALSE(lock.held());
}

INSTANTIATE_TEST_SUITE_P(CpuCounts, SpinLockContentionTest,
                         ::testing::Values(2, 3, 8, 16, 32));

TEST(SpinLockTest, ContendedWaitAttributedToCategory) {
  Rig rig(2);
  SpinLock lock(rig.ms, rig.addr_space);
  rig.engine.cpu(0).start([&] {
    sim::SimCpu& me = rig.engine.cpu(0);
    lock.acquire(me, TimeCategory::kLock);
    me.consume(10000, TimeCategory::kBusy);
    lock.release(me);
  });
  rig.engine.cpu(1).start([&] {
    sim::SimCpu& me = rig.engine.cpu(1);
    me.consume(100, TimeCategory::kBusy);
    lock.acquire(me, TimeCategory::kScheduling);
    lock.release(me);
  });
  rig.engine.run();
  EXPECT_GT(rig.engine.cpu(1).breakdown().get(TimeCategory::kScheduling),
            5000u);
}

class BarrierTest : public ::testing::TestWithParam<int> {};

TEST_P(BarrierTest, NobodyEscapesEarly) {
  const int n = GetParam();
  Rig rig(n);
  SenseBarrier barrier(rig.ms, rig.addr_space);
  barrier.configure(n);
  const int episodes = 5;
  std::vector<int> arrived(episodes, 0);
  sim::Rng rng(11);
  for (int c = 0; c < n; ++c) {
    const auto skew = static_cast<sim::Cycles>(rng.next_below(2000));
    rig.engine.cpu(c).start([&, c, skew] {
      sim::SimCpu& me = rig.engine.cpu(c);
      me.consume(skew, TimeCategory::kBusy);
      for (int ep = 0; ep < episodes; ++ep) {
        ++arrived[static_cast<std::size_t>(ep)];
        barrier.arrive(me, c, TimeCategory::kBarrier);
        // Everyone must have arrived at episode ep before anyone leaves.
        EXPECT_EQ(arrived[static_cast<std::size_t>(ep)], n)
            << "cpu " << c << " escaped episode " << ep;
        me.consume(100 + static_cast<sim::Cycles>(c) * 13,
                   TimeCategory::kBusy);
      }
    });
  }
  rig.engine.run();
  EXPECT_EQ(barrier.episodes(), static_cast<std::uint64_t>(episodes));
  for (int c = 0; c < n; ++c) {
    EXPECT_TRUE(rig.engine.cpu(c).finished()) << "cpu " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(ParticipantCounts, BarrierTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

TEST(BarrierTest, ReconfigureBetweenRegions) {
  Rig rig(4);
  SenseBarrier barrier(rig.ms, rig.addr_space);
  barrier.configure(4);
  for (int c = 0; c < 4; ++c) {
    rig.engine.cpu(c).start([&, c] {
      barrier.arrive(rig.engine.cpu(c), c, TimeCategory::kBarrier);
    });
  }
  rig.engine.run();
  barrier.configure(2);
  EXPECT_EQ(barrier.participants(), 2);
}

TEST(BarrierTest, WaitTimeAttributed) {
  Rig rig(2);
  SenseBarrier barrier(rig.ms, rig.addr_space);
  barrier.configure(2);
  rig.engine.cpu(0).start([&] {
    barrier.arrive(rig.engine.cpu(0), 0, TimeCategory::kBarrier);
  });
  rig.engine.cpu(1).start([&] {
    rig.engine.cpu(1).consume(50000, TimeCategory::kBusy);
    barrier.arrive(rig.engine.cpu(1), 1, TimeCategory::kBarrier);
  });
  rig.engine.run();
  EXPECT_GT(rig.engine.cpu(0).breakdown().get(TimeCategory::kBarrier),
            40000u);
}

}  // namespace
}  // namespace ssomp::rt
