// Runtime construct tests across all three execution modes.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "rt/shared.hpp"
#include "tests/helpers.hpp"

namespace ssomp::rt {
namespace {

using front::ScheduleClause;
using front::ScheduleKind;
using test::Harness;

struct ModeParam {
  ExecutionMode mode;
  const char* name;
};

class ModeTest : public ::testing::TestWithParam<ModeParam> {
 protected:
  [[nodiscard]] static int expected_threads(const Harness& h,
                                            ExecutionMode mode) {
    return mode == ExecutionMode::kDouble ? h.machine->ncpus()
                                          : h.machine->ncmp();
  }
};

TEST_P(ModeTest, TeamSizeAndIds) {
  Harness h(4, GetParam().mode);
  std::set<int> ids;
  int nthreads = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (!t.is_a_stream()) ids.insert(t.id());
      nthreads = t.nthreads();
    });
  });
  const int want = expected_threads(h, GetParam().mode);
  EXPECT_EQ(nthreads, want);
  EXPECT_EQ(static_cast<int>(ids.size()), want);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), want - 1);
}

TEST_P(ModeTest, StaticLoopCoversEachIterationOnce) {
  Harness h(4, GetParam().mode);
  std::map<long, int> hits;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(0, 1000, ScheduleClause{}, [&](long i) {
        if (!t.is_a_stream()) ++hits[i];
      });
    });
  });
  EXPECT_EQ(hits.size(), 1000u);
  for (const auto& [i, count] : hits) {
    EXPECT_EQ(count, 1) << "iteration " << i;
  }
}

TEST_P(ModeTest, StaticChunkedRoundRobin) {
  Harness h(2, GetParam().mode);
  std::map<long, int> owner;
  ScheduleClause sched;
  sched.chunk = 7;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(0, 100, sched, [&](long i) {
        if (!t.is_a_stream()) owner[i] = t.id();
      });
    });
  });
  ASSERT_EQ(owner.size(), 100u);
  const int n = expected_threads(h, GetParam().mode);
  for (long i = 0; i < 100; ++i) {
    EXPECT_EQ(owner[i], static_cast<int>((i / 7) % n)) << "iteration " << i;
  }
}

TEST_P(ModeTest, DynamicLoopCoversEachIterationOnce) {
  Harness h(4, GetParam().mode);
  std::map<long, int> hits;
  ScheduleClause sched;
  sched.kind = ScheduleKind::kDynamic;
  sched.chunk = 5;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(0, 512, sched, [&](long i) {
        if (!t.is_a_stream()) ++hits[i];
      });
    });
  });
  EXPECT_EQ(hits.size(), 512u);
  for (const auto& [i, count] : hits) EXPECT_EQ(count, 1);
}

TEST_P(ModeTest, GuidedChunksDecrease) {
  Harness h(4, GetParam().mode);
  std::vector<long> chunk_sizes;
  ScheduleClause sched;
  sched.kind = ScheduleKind::kGuided;
  sched.chunk = 2;
  long covered = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_chunks(0, 1000, sched, [&](long lo, long hi) {
        if (!t.is_a_stream()) {
          chunk_sizes.push_back(hi - lo);
          covered += hi - lo;
        }
      });
    });
  });
  EXPECT_EQ(covered, 1000);
  EXPECT_GE(chunk_sizes.front(), chunk_sizes.back());
  EXPECT_GE(chunk_sizes.front(), 1000 / (2 * 8));
}

TEST_P(ModeTest, SingleExecutesExactlyOnce) {
  Harness h(4, GetParam().mode);
  int executed = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      for (int s = 0; s < 3; ++s) {
        t.single([&] { ++executed; });
      }
    });
  });
  EXPECT_EQ(executed, 3);
}

TEST_P(ModeTest, MasterExecutesOnThreadZeroOnly) {
  Harness h(4, GetParam().mode);
  int r_executions = 0;
  int a_executions = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.master([&] {
        if (t.is_a_stream()) {
          ++a_executions;
        } else {
          ++r_executions;
        }
      });
      t.barrier();
    });
  });
  EXPECT_EQ(r_executions, 1);
  // §3.1: the A-stream paired with the master executes master sections.
  EXPECT_EQ(a_executions,
            GetParam().mode == ExecutionMode::kSlipstream ? 1 : 0);
}

TEST_P(ModeTest, CriticalMutualExclusionAndSum) {
  Harness h(4, GetParam().mode);
  long counter = 0;
  int inside = 0;
  int max_inside = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      for (int i = 0; i < 5; ++i) {
        t.critical([&] {
          if (t.is_a_stream()) return;  // default policy skips anyway
          ++inside;
          max_inside = std::max(max_inside, inside);
          t.compute(40);
          ++counter;
          --inside;
        });
      }
    });
  });
  EXPECT_EQ(max_inside, 1);
  EXPECT_EQ(counter,
            5L * expected_threads(h, GetParam().mode));
}

TEST_P(ModeTest, ReduceSumMatchesClosedForm) {
  Harness h(4, GetParam().mode);
  double result = 0.0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      double local = 0.0;
      t.for_loop(
          1, 101, ScheduleClause{}, [&](long i) { local += static_cast<double>(i); },
          /*nowait=*/true);
      const double sum = t.reduce_sum(local);
      if (t.id() == 0 && !t.is_a_stream()) result = sum;
    });
  });
  EXPECT_DOUBLE_EQ(result, 5050.0);
}

TEST_P(ModeTest, ReduceMax) {
  Harness h(4, GetParam().mode);
  double result = 0.0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      const double mine = 100.0 + t.id();
      const double m = t.reduce_max(mine);
      if (t.id() == 0 && !t.is_a_stream()) result = m;
    });
  });
  EXPECT_DOUBLE_EQ(result,
                   99.0 + expected_threads(h, GetParam().mode));
}

TEST_P(ModeTest, SectionsStaticAllExecuted) {
  Harness h(4, GetParam().mode);
  std::vector<int> executed(10, 0);
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      std::vector<std::function<void()>> secs;
      for (int s = 0; s < 10; ++s) {
        secs.push_back([&, s] {
          if (!t.is_a_stream()) ++executed[static_cast<std::size_t>(s)];
        });
      }
      t.sections(secs, ScheduleKind::kStatic);
    });
  });
  for (int s = 0; s < 10; ++s) EXPECT_EQ(executed[static_cast<std::size_t>(s)], 1);
}

TEST_P(ModeTest, SectionsDynamicAllExecuted) {
  Harness h(4, GetParam().mode);
  std::vector<int> executed(10, 0);
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      std::vector<std::function<void()>> secs;
      for (int s = 0; s < 10; ++s) {
        secs.push_back([&, s] {
          if (!t.is_a_stream()) ++executed[static_cast<std::size_t>(s)];
        });
      }
      t.sections(secs, ScheduleKind::kDynamic);
    });
  });
  for (int s = 0; s < 10; ++s) EXPECT_EQ(executed[static_cast<std::size_t>(s)], 1);
}

TEST_P(ModeTest, SharedArrayWritesVisibleAcrossRegions) {
  Harness h(4, GetParam().mode);
  SharedArray<double> data(*h.runtime, 256, "data");
  double sum = 0.0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(0, 256, ScheduleClause{}, [&](long i) {
        data.write(t, static_cast<std::size_t>(i), static_cast<double>(i));
      });
    });
    sc.parallel([&](ThreadCtx& t) {
      double local = 0.0;
      t.for_loop(
          0, 256, ScheduleClause{},
          [&](long i) { local += data.read(t, static_cast<std::size_t>(i)); },
          /*nowait=*/true);
      const double s = t.reduce_sum(local);
      if (t.id() == 0 && !t.is_a_stream()) sum = s;
    });
  });
  EXPECT_DOUBLE_EQ(sum, 255.0 * 256.0 / 2.0);
}

TEST_P(ModeTest, AtomicAddAccumulates) {
  Harness h(4, GetParam().mode);
  SharedVar<double> acc(*h.runtime, "acc");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) { acc.atomic_add(t, 1.0); });
  });
  EXPECT_DOUBLE_EQ(acc.host(),
                   static_cast<double>(expected_threads(h, GetParam().mode)));
}

TEST_P(ModeTest, NowaitSkipsBarrierButJoinStillWorks) {
  Harness h(4, GetParam().mode);
  long total = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(
          0, 64, ScheduleClause{},
          [&](long) {
            if (!t.is_a_stream()) ++total;
          },
          /*nowait=*/true);
    });
  });
  EXPECT_EQ(total, 64);
}

TEST_P(ModeTest, BackToBackNowaitDynamicLoops) {
  Harness h(4, GetParam().mode);
  long a = 0;
  long b = 0;
  ScheduleClause dyn;
  dyn.kind = ScheduleKind::kDynamic;
  dyn.chunk = 3;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(
          0, 100, dyn,
          [&](long) {
            if (!t.is_a_stream()) ++a;
          },
          /*nowait=*/true);
      t.for_loop(
          0, 50, dyn,
          [&](long) {
            if (!t.is_a_stream()) ++b;
          },
          /*nowait=*/true);
    });
  });
  EXPECT_EQ(a, 100);
  EXPECT_EQ(b, 50);
}

TEST_P(ModeTest, FlushIsVoid) {
  Harness h(2, GetParam().mode);
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.flush();
      t.barrier();
    });
  });
  SUCCEED();
}

TEST_P(ModeTest, MultipleRegionsReuseThePool) {
  Harness h(4, GetParam().mode);
  int regions = 0;
  h.run([&](SerialCtx& sc) {
    for (int r = 0; r < 5; ++r) {
      sc.parallel([&](ThreadCtx& t) {
        if (t.id() == 0 && !t.is_a_stream()) ++regions;
      });
    }
  });
  EXPECT_EQ(regions, 5);
  EXPECT_EQ(h.runtime->regions_executed(), 5);
}

TEST_P(ModeTest, IoOperations) {
  Harness h(2, GetParam().mode);
  h.run([&](SerialCtx& sc) {
    sc.io_read(1000);
    sc.parallel([&](ThreadCtx& t) {
      t.master([&] {
        t.io_read(500);
        t.io_write(500);
      });
      t.barrier();
      t.single([&] { t.io_write(100); });
    });
    sc.io_write(1000);
  });
  SUCCEED();  // completion without deadlock/stranded tokens is the assertion
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ModeTest,
    ::testing::Values(ModeParam{ExecutionMode::kSingle, "single"},
                      ModeParam{ExecutionMode::kDouble, "double"},
                      ModeParam{ExecutionMode::kSlipstream, "slipstream"}),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
      return info.param.name;
    });

TEST_P(ModeTest, AffinityLoopCoversEachIterationOnce) {
  Harness h(4, GetParam().mode);
  std::map<long, int> hits;
  ScheduleClause sched;
  sched.kind = ScheduleKind::kAffinity;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(0, 777, sched, [&](long i) {
        if (!t.is_a_stream()) ++hits[i];
      });
    });
  });
  EXPECT_EQ(hits.size(), 777u);
  for (const auto& [i, count] : hits) EXPECT_EQ(count, 1) << i;
}

TEST(AffinityTest, BalancedLoadStaysLocal) {
  // With perfectly balanced work every thread consumes only its own
  // partition — the static-like locality the extension is for.
  Harness h(4, ExecutionMode::kSingle);
  std::map<int, std::pair<long, long>> range_of_tid;  // tid -> [min,max]
  ScheduleClause sched;
  sched.kind = ScheduleKind::kAffinity;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(0, 400, sched, [&](long i) {
        t.compute(50);  // uniform cost
        auto& r = range_of_tid.try_emplace(t.id(), i, i).first->second;
        r.first = std::min(r.first, i);
        r.second = std::max(r.second, i);
      });
    });
  });
  ASSERT_EQ(range_of_tid.size(), 4u);
  // Partitions are contiguous blocks of 100; no thread crossed into
  // another's block.
  for (const auto& [tid, r] : range_of_tid) {
    EXPECT_EQ(r.first / 100, tid) << "tid " << tid;
    EXPECT_EQ(r.second / 100, tid) << "tid " << tid;
  }
}

TEST(AffinityTest, ImbalancedLoadIsStolen) {
  // Thread 0's partition is 50x more expensive; the others must steal
  // from it, so every iteration still executes exactly once and the
  // makespan beats leaving thread 0 alone with its block.
  Harness h(4, ExecutionMode::kSingle);
  std::map<long, int> hits;
  std::map<long, int> owner;
  ScheduleClause sched;
  sched.kind = ScheduleKind::kAffinity;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(0, 400, sched, [&](long i) {
        t.compute(i < 100 ? 5000 : 100);
        if (!t.is_a_stream()) {
          ++hits[i];
          owner[i] = t.id();
        }
      });
    });
  });
  EXPECT_EQ(hits.size(), 400u);
  std::set<int> heavy_executors;
  for (long i = 0; i < 100; ++i) heavy_executors.insert(owner[i]);
  EXPECT_GT(heavy_executors.size(), 1u)
      << "nobody stole from the overloaded partition";
}

TEST(AffinityTest, SlipstreamForwardsAffinityChunks) {
  Harness h(4, ExecutionMode::kSlipstream);
  std::map<int, std::vector<std::pair<long, long>>> r_chunks, a_chunks;
  ScheduleClause sched;
  sched.kind = ScheduleKind::kAffinity;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_chunks(0, 300, sched, [&](long lo, long hi) {
        (t.is_a_stream() ? a_chunks : r_chunks)[t.id()].push_back({lo, hi});
      });
    });
  });
  ASSERT_FALSE(r_chunks.empty());
  for (const auto& [tid, chunks] : r_chunks) {
    EXPECT_EQ(a_chunks[tid], chunks) << "thread " << tid;
  }
}

TEST_P(ModeTest, NestedParallelSerializes) {
  // A nested parallel region runs as a one-thread team on the
  // encountering thread (nesting disabled, the §3.1 implementation-
  // dependent choice): every outer thread executes the whole inner range.
  Harness h(4, GetParam().mode);
  std::map<long, int> inner_hits;
  int inner_nthreads = -1;
  int inner_tid = -1;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.parallel([&](ThreadCtx& inner) {
        inner_nthreads = inner.nthreads();
        inner_tid = inner.id();
        inner.for_loop(0, 40, ScheduleClause{}, [&](long i) {
          if (!inner.is_a_stream()) ++inner_hits[i];
        });
        inner.barrier();  // no-op in a one-thread team
        const double r = inner.reduce_sum(3.0);
        EXPECT_DOUBLE_EQ(r, 3.0);
        inner.single([&] {});
      });
    });
  });
  EXPECT_EQ(inner_nthreads, 1);
  EXPECT_EQ(inner_tid, 0);
  const int outer = GetParam().mode == ExecutionMode::kDouble
                        ? h.machine->ncpus()
                        : h.machine->ncmp();
  ASSERT_EQ(inner_hits.size(), 40u);
  for (const auto& [i, count] : inner_hits) {
    EXPECT_EQ(count, outer) << "iteration " << i;
  }
}

TEST(RuntimeTest, NestedDynamicScheduleAlsoSerializes) {
  Harness h(2, ExecutionMode::kSlipstream);
  long covered = 0;
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      if (t.id() != 0) return;
      t.parallel([&](ThreadCtx& inner) {
        ScheduleClause dyn;
        dyn.kind = ScheduleKind::kDynamic;
        dyn.chunk = 3;
        inner.for_loop(0, 50, dyn, [&](long) {
          if (!inner.is_a_stream()) ++covered;
        });
      });
    });
  });
  EXPECT_EQ(covered, 50);
}

TEST(RuntimeTest, RegionRecordsCaptureEachRegion) {
  Harness h(2, ExecutionMode::kSlipstream);
  SharedArray<double> data(*h.runtime, 256, "d");
  h.run([&](SerialCtx& sc) {
    sc.parallel([&](ThreadCtx& t) {
      t.for_loop(0, 256, ScheduleClause{}, [&](long i) {
        data.write(t, static_cast<std::size_t>(i), 1.0);
      });
    });
    sc.parallel(
        [&](ThreadCtx& t) {
          t.barrier();
          t.barrier();
        },
        "SLIPSTREAM(LOCAL_SYNC, 2)");
  });
  const auto& recs = h.runtime->region_records();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].index, 0);
  EXPECT_EQ(recs[0].mode, ExecutionMode::kSlipstream);
  EXPECT_GT(recs[0].cycles, 0u);
  EXPECT_GT(recs[0].tokens_consumed, 0u);
  EXPECT_GT(recs[0].converted_stores + recs[0].dropped_stores, 0u);
  EXPECT_EQ(recs[1].slip.type, slip::SyncType::kLocal);
  EXPECT_EQ(recs[1].slip.tokens, 2);
  // 2 explicit + 1 implicit end barrier, 2 pairs.
  EXPECT_EQ(recs[1].tokens_consumed, 6u);
  EXPECT_GE(recs[1].start, recs[0].start + recs[0].cycles);
}

TEST(RuntimeTest, IfClauseFalseRunsSerially) {
  Harness h(4, ExecutionMode::kDouble);
  int executions = 0;
  int nthreads = -1;
  h.run([&](SerialCtx& sc) {
    sc.parallel(
        [&](ThreadCtx& t) {
          ++executions;
          nthreads = t.nthreads();
        },
        /*region_directive=*/{}, /*if_clause=*/false);
  });
  EXPECT_EQ(executions, 1);
  EXPECT_EQ(nthreads, 1);
}

TEST(RuntimeTest, LogicalThreadCountPerMode) {
  {
    Harness h(4, ExecutionMode::kSingle);
    EXPECT_EQ(h.runtime->logical_thread_count(), 4);
  }
  {
    Harness h(4, ExecutionMode::kDouble);
    EXPECT_EQ(h.runtime->logical_thread_count(), 8);
  }
  {
    Harness h(4, ExecutionMode::kSlipstream);
    EXPECT_EQ(h.runtime->logical_thread_count(), 4);
  }
}

TEST(RuntimeTest, JobWaitAccountedForSlaves) {
  Harness h(2, ExecutionMode::kSingle);
  h.run([&](SerialCtx& sc) {
    sc.compute(10000);
    sc.parallel([&](ThreadCtx& t) { t.compute(100); });
  });
  // CPU 2 (node 1 R-stream) idled in the pool while the master computed.
  EXPECT_GT(h.machine->cpu(2).breakdown().get(sim::TimeCategory::kJobWait),
            9000u);
}

TEST(RuntimeTest, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Harness h(4, ExecutionMode::kDouble);
    return h.run([&](SerialCtx& sc) {
      sc.parallel([&](ThreadCtx& t) {
        front::ScheduleClause dyn;
        dyn.kind = front::ScheduleKind::kDynamic;
        dyn.chunk = 2;
        t.for_loop(0, 200, dyn, [&](long) { t.compute(37); });
      });
    });
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ssomp::rt
