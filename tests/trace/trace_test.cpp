// Observability layer: ring buffers, metrics, tracer, Chrome export,
// the JSON reader, and the end-to-end cross-check against the runtime's
// SlipRegionStats counters.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "rt/shared.hpp"
#include "tests/helpers.hpp"
#include "trace/chrome.hpp"
#include "trace/jsonv.hpp"
#include "trace/metrics.hpp"
#include "trace/ring.hpp"
#include "trace/summary.hpp"
#include "trace/tracer.hpp"

namespace ssomp::trace {
namespace {

using front::ScheduleClause;
using test::Harness;

// --- EventRing -----------------------------------------------------------

TEST(EventRingTest, StoresUpToCapacity) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 3; ++i) {
    Event e;
    e.seq = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.pushed(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_EQ(ring.at(0).seq, 0u);
  EXPECT_EQ(ring.at(2).seq, 2u);
}

TEST(EventRingTest, WraparoundEvictsOldestAndCountsExactly) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Event e;
    e.seq = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Chronological order is preserved: oldest retained is seq 6.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).seq, 6u + i);
  }
}

// --- Histogram -----------------------------------------------------------

TEST(HistogramTest, ExactAggregates) {
  Histogram h;
  EXPECT_EQ(h.percentile(50), 0u);  // empty
  h.record(0);
  h.record(7);
  h.record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.mean(), 107.0 / 3.0, 1e-9);
}

TEST(HistogramTest, PercentilesAreBucketUppersClampedToObservedRange) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  // Rank 50 lands in bucket [32, 63] (cumulative 63) -> upper bound 63.
  EXPECT_EQ(h.percentile(50), 63u);
  // Rank 100 lands in bucket [64, 127]; clamped to the observed max.
  EXPECT_EQ(h.percentile(100), 100u);
  // Rank floor: clamped to the observed min.
  EXPECT_EQ(h.percentile(0), 1u);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
}

TEST(MetricsRegistryTest, JsonIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("tokens").inc(3);
  reg.histogram("wait").record(5);
  reg.histogram("wait").record(90);
  const auto parsed = parse_json(reg.to_json());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue* counters = parsed.value.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("tokens"), 3.0);
  const JsonValue* hists = parsed.value.find("histograms");
  ASSERT_NE(hists, nullptr);
  const JsonValue* wait = hists->find("wait");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->number_or("count"), 2.0);
  EXPECT_EQ(wait->number_or("sum"), 95.0);
}

// --- Tracer --------------------------------------------------------------

TEST(TracerTest, KindCountsSurviveRingEviction) {
  sim::Engine engine;
  engine.add_cpu("p0");
  Tracer tracer;
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  tracer.attach(engine, cfg);
  for (int i = 0; i < 100; ++i) {
    tracer.emit(0, EventKind::kTokenInsert, static_cast<std::uint64_t>(i));
  }
  for (int i = 0; i < 50; ++i) {
    tracer.emit(0, EventKind::kTokenConsume);
  }
  const TraceCounts counts = tracer.counts();
  EXPECT_EQ(counts.recorded, 150u);
  EXPECT_EQ(counts.dropped, 142u);  // ring keeps only 8
  EXPECT_EQ(counts.of(EventKind::kTokenInsert), 100u);
  EXPECT_EQ(counts.of(EventKind::kTokenConsume), 50u);
  EXPECT_EQ(tracer.ring(0).size(), 8u);
  // Exact counts still flow into the exported JSON's otherData.
  const auto parsed = parse_json(chrome_trace_json(tracer));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue* other = parsed.value.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(other->number_or("token_insert"), 100.0);
  EXPECT_EQ(other->number_or("token_consume"), 50.0);
  EXPECT_EQ(other->number_or("events_dropped"), 142.0);
}

TEST(TracerTest, SortedEventsMergeAcrossCpus) {
  sim::Engine engine;
  engine.add_cpu("p0");
  engine.add_cpu("p1");
  Tracer tracer;
  TraceConfig cfg;
  cfg.enabled = true;
  tracer.attach(engine, cfg);
  tracer.emit(1, EventKind::kBarrierEnter);
  tracer.emit(0, EventKind::kBarrierEnter);
  tracer.emit(1, EventKind::kBarrierExit);
  const auto events = tracer.sorted_events();
  ASSERT_EQ(events.size(), 3u);
  // Same cycle: global sequence breaks the tie in emission order.
  EXPECT_EQ(events[0].cpu, 1);
  EXPECT_EQ(events[1].cpu, 0);
  EXPECT_EQ(events[2].kind, EventKind::kBarrierExit);
}

// --- JSON reader ---------------------------------------------------------

TEST(JsonParserTest, ParsesScalarsArraysObjects) {
  const auto r = parse_json(
      R"({"a": [1, 2.5, -3e2], "b": "x\"yA", "c": true, "d": null})");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(r.value.is_object());
  const JsonValue* a = r.value.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].number, -300.0);
  EXPECT_EQ(r.value.string_or("b"), "x\"yA");
  EXPECT_TRUE(r.value.find("c")->boolean);
  EXPECT_EQ(r.value.find("d")->type, JsonValue::Type::kNull);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("{").ok);
  EXPECT_FALSE(parse_json("[1,]").ok);
  EXPECT_FALSE(parse_json("\"unterminated").ok);
  EXPECT_FALSE(parse_json("{} trailing").ok);
  EXPECT_FALSE(parse_json("{\"k\" 1}").ok);
  const auto r = parse_json("[1, x]");
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.offset, 0u);
}

// --- End-to-end: slipstream run -> trace -> parse-back -------------------

rt::RuntimeOptions traced_slip_opts() {
  rt::RuntimeOptions o;
  o.mode = rt::ExecutionMode::kSlipstream;
  o.slip = slip::SlipstreamConfig::one_token_local();
  o.trace.enabled = true;
  o.metrics = true;
  return o;
}

TEST(TraceEndToEndTest, TokenEventCountsMatchSlipRegionStats) {
  Harness h(2, traced_slip_opts());
  rt::SharedArray<double> data(*h.runtime, 256, "d");
  h.run([&](rt::SerialCtx& sc) {
    for (int r = 0; r < 3; ++r) {
      sc.parallel([&](rt::ThreadCtx& t) {
        t.for_loop(0, 256, ScheduleClause{}, [&](long i) {
          data.write(t, static_cast<std::size_t>(i),
                     static_cast<double>(i));
        });
        t.barrier();
      });
    }
  });
  const auto& stats = h.runtime->slip_stats();
  const auto counts = h.runtime->instrumentation().tracer().counts();
  EXPECT_GT(stats.tokens_inserted, 0u);
  EXPECT_EQ(counts.of(EventKind::kTokenInsert), stats.tokens_inserted);
  EXPECT_EQ(counts.of(EventKind::kTokenConsume), stats.tokens_consumed);
  EXPECT_EQ(counts.of(EventKind::kChunkPush), stats.forwarded_chunks);
  EXPECT_EQ(counts.of(EventKind::kStoreConvert), stats.converted_stores);
  EXPECT_EQ(counts.of(EventKind::kStoreDrop), stats.dropped_stores);
  EXPECT_EQ(counts.of(EventKind::kRecoveryRequest), stats.recoveries);

  // The metrics registry aggregates the same protocol online.
  const auto& metrics = h.runtime->instrumentation().metrics();
  EXPECT_EQ(metrics.counters().at("tokens_inserted").value(),
            stats.tokens_inserted);
  EXPECT_EQ(metrics.counters().at("tokens_consumed").value(),
            stats.tokens_consumed);
}

TEST(TraceEndToEndTest, ChromeExportParsesBackAndSummarizes) {
  Harness h(2, traced_slip_opts());
  rt::SharedArray<double> data(*h.runtime, 128, "d");
  h.run([&](rt::SerialCtx& sc) {
    sc.parallel([&](rt::ThreadCtx& t) {
      t.for_loop(0, 128, ScheduleClause{}, [&](long i) {
        data.write(t, static_cast<std::size_t>(i), 1.0);
      });
    });
  });
  const auto& tracer = h.runtime->instrumentation().tracer();
  const std::string json = chrome_trace_json(tracer);
  const auto parsed = parse_json(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << " at offset " << parsed.offset;

  const JsonValue* events = parsed.value.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->array.size(), 0u);
  // Every record carries the mandatory chrome fields, and B/E slices
  // balance per track (no dangling begins).
  std::map<std::string, int> depth;  // tid|name -> open count
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const std::string ph = e.string_or("ph");
    ASSERT_FALSE(ph.empty());
    if (ph == "B") ++depth[e.string_or("name")];
    if (ph == "E") --depth[e.string_or("name")];
  }
  for (const auto& [name, d] : depth) EXPECT_EQ(d, 0) << name;

  const auto summary = summarize_chrome_trace_text(json);
  ASSERT_TRUE(summary.ok) << summary.error;
  EXPECT_EQ(summary.token_inserts,
            h.runtime->slip_stats().tokens_inserted);
  EXPECT_EQ(summary.token_consumes,
            h.runtime->slip_stats().tokens_consumed);
  EXPECT_FALSE(summary.format().empty());
}

TEST(TraceEndToEndTest, DisabledInstrumentationRecordsNothing) {
  Harness h(2, rt::ExecutionMode::kSlipstream);
  rt::SharedArray<double> data(*h.runtime, 64, "d");
  h.run([&](rt::SerialCtx& sc) {
    sc.parallel([&](rt::ThreadCtx& t) {
      t.for_loop(0, 64, ScheduleClause{}, [&](long i) {
        data.write(t, static_cast<std::size_t>(i), 1.0);
      });
    });
  });
  const auto& inst = h.runtime->instrumentation();
  EXPECT_FALSE(inst.active());
  EXPECT_FALSE(inst.tracer().enabled());
  EXPECT_EQ(inst.tracer().counts().recorded, 0u);
}

}  // namespace
}  // namespace ssomp::trace
