// Merge properties of the aggregation primitives: Counter, Histogram,
// MetricsRegistry and CycleAccount merges must be associative and
// order-independent (the sweep rollup folds per-point snapshots in
// record order, and byte-identical aggregates at any --jobs count
// depend on nothing else), and merged histogram percentiles must match
// the pooled sample stream to bucket resolution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "trace/cycle_account.hpp"
#include "trace/metrics.hpp"

namespace ssomp::trace {
namespace {

/// Deterministic sample stream (SplitMix64) — no global RNG state.
std::vector<std::uint64_t> samples(std::uint64_t seed, int n) {
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  std::uint64_t x = seed;
  for (int i = 0; i < n; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    out.push_back(z % 2'000'000);  // latency-ish range, several buckets
  }
  return out;
}

Histogram record_all(const std::vector<std::uint64_t>& vs) {
  Histogram h;
  for (std::uint64_t v : vs) h.record(v);
  return h;
}

void expect_same_state(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), b.bucket_count(i)) << "bucket " << i;
  }
  for (double p : {0.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_EQ(a.percentile(p), b.percentile(p)) << "p" << p;
  }
}

TEST(CounterMergeTest, AssociativeAndCommutative) {
  Counter a, b, c;
  a.inc(3);
  b.inc(5);
  c.inc(7);
  Counter ab = a;
  ab.merge(b);
  ab.merge(c);  // (a + b) + c
  Counter bc = b;
  bc.merge(c);
  Counter a_bc = a;
  a_bc.merge(bc);  // a + (b + c)
  EXPECT_EQ(ab.value(), 15u);
  EXPECT_EQ(a_bc.value(), 15u);
  Counter cba = c;
  cba.merge(b);
  cba.merge(a);
  EXPECT_EQ(cba.value(), 15u);
}

TEST(HistogramMergeTest, MergeEqualsPooledStream) {
  const auto s1 = samples(1, 400);
  const auto s2 = samples(2, 150);
  Histogram merged = record_all(s1);
  merged.merge(record_all(s2));

  std::vector<std::uint64_t> pooled = s1;
  pooled.insert(pooled.end(), s2.begin(), s2.end());
  // Lossless on bucket state: the merged histogram is exactly the
  // histogram of the concatenated stream, percentiles included.
  expect_same_state(merged, record_all(pooled));
}

TEST(HistogramMergeTest, AssociativeAndOrderIndependent) {
  const auto s1 = samples(11, 300);
  const auto s2 = samples(12, 200);
  const auto s3 = samples(13, 100);
  const Histogram h1 = record_all(s1);
  const Histogram h2 = record_all(s2);
  const Histogram h3 = record_all(s3);

  Histogram left = h1;  // (h1 + h2) + h3
  left.merge(h2);
  left.merge(h3);
  Histogram bc = h2;  // h1 + (h2 + h3)
  bc.merge(h3);
  Histogram right = h1;
  right.merge(bc);
  expect_same_state(left, right);

  Histogram reversed = h3;  // h3 + h2 + h1
  reversed.merge(h2);
  reversed.merge(h1);
  expect_same_state(left, reversed);
}

TEST(HistogramMergeTest, MergedPercentileWithinOneBucketOfExact) {
  const auto s1 = samples(21, 500);
  const auto s2 = samples(22, 500);
  Histogram merged = record_all(s1);
  merged.merge(record_all(s2));

  std::vector<std::uint64_t> pooled = s1;
  pooled.insert(pooled.end(), s2.begin(), s2.end());
  std::sort(pooled.begin(), pooled.end());
  for (double p : {50.0, 90.0, 99.0}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(pooled.size())));
    const std::uint64_t exact = pooled[rank == 0 ? 0 : rank - 1];
    const std::uint64_t est = merged.percentile(p);
    // The estimate is the containing power-of-two bucket's upper bound
    // (clamped to the observed max): never below the exact value, never
    // outside its bucket.
    EXPECT_GE(est, exact) << "p" << p;
    EXPECT_EQ(Histogram::bucket_of(est), Histogram::bucket_of(exact))
        << "p" << p;
  }
}

TEST(HistogramMergeTest, EmptySidesAreIdentity) {
  const Histogram filled = record_all(samples(31, 64));
  Histogram a = filled;
  a.merge(Histogram{});
  expect_same_state(a, filled);
  Histogram b;
  b.merge(filled);
  expect_same_state(b, filled);
}

TEST(MetricsRegistryMergeTest, OrderIndependentAcrossDisjointAndSharedNames) {
  MetricsRegistry r1, r2, r3;
  r1.counter("shared").inc(1);
  r1.counter("only1").inc(10);
  r1.histogram("lat").record(100);
  r2.counter("shared").inc(2);
  r2.histogram("lat").record(3000);
  r3.counter("only3").inc(30);
  r3.histogram("other").record(7);

  MetricsRegistry fwd = r1;
  fwd.merge(r2);
  fwd.merge(r3);
  MetricsRegistry rev = r3;
  rev.merge(r2);
  rev.merge(r1);

  EXPECT_EQ(fwd.counters().at("shared").value(), 3u);
  EXPECT_EQ(fwd.counters().at("only1").value(), 10u);
  EXPECT_EQ(fwd.counters().at("only3").value(), 30u);
  EXPECT_EQ(fwd.histograms().at("lat").count(), 2u);
  // std::map keying + commutative folds: serialization-identical.
  EXPECT_EQ(fwd.to_json(), rev.to_json());
}

CycleAccount make_account(int cpus, int slots, sim::Cycles base) {
  CycleAccount a;
  a.reset(cpus);
  for (int s = 0; s < slots; ++s) {
    for (int c = 0; c < cpus; ++c) {
      sim::Cycles* row = a.row_data(c, s);
      for (int b = 0; b < sim::kCycleBucketCount; ++b) {
        row[b] = base + static_cast<sim::Cycles>(s * 100 + c * 10 + b);
      }
    }
  }
  return a;
}

void expect_same_account(const CycleAccount& a, const CycleAccount& b) {
  ASSERT_EQ(a.cpus(), b.cpus());
  ASSERT_EQ(a.slots(), b.slots());
  EXPECT_EQ(a.total(), b.total());
  for (int s = 0; s < a.slots(); ++s) {
    for (int c = 0; c < a.cpus(); ++c) {
      EXPECT_EQ(a.row(c, s).cycles, b.row(c, s).cycles)
          << "cpu " << c << " slot " << s;
    }
  }
}

TEST(CycleAccountMergeTest, AssociativeAndOrderIndependent) {
  const CycleAccount a1 = make_account(2, 3, 1);
  const CycleAccount a2 = make_account(2, 3, 1000);
  const CycleAccount a3 = make_account(2, 3, 50000);

  CycleAccount left = a1;  // (a1 + a2) + a3
  left.merge(a2);
  left.merge(a3);
  CycleAccount bc = a2;  // a1 + (a2 + a3)
  bc.merge(a3);
  CycleAccount right = a1;
  right.merge(bc);
  expect_same_account(left, right);

  CycleAccount reversed = a3;
  reversed.merge(a2);
  reversed.merge(a1);
  expect_same_account(left, reversed);
}

TEST(CycleAccountMergeTest, RaggedShapesPadWithZeros) {
  // Sweeps merge accounts from different machine sizes and region
  // counts; the smaller side must behave as all-zero padding.
  CycleAccount small = make_account(2, 2, 1);
  const CycleAccount big = make_account(4, 5, 7);
  const sim::Cycles expected = small.total() + big.total();
  small.merge(big);
  EXPECT_EQ(small.cpus(), 4);
  EXPECT_EQ(small.slots(), 5);
  EXPECT_EQ(small.total(), expected);
  // A cpu/slot that only the big side had carries exactly its value.
  EXPECT_EQ(small.row(3, 4).cycles, big.row(3, 4).cycles);

  CycleAccount other = make_account(4, 5, 7);
  other.merge(make_account(2, 2, 1));
  expect_same_account(small, other);
}

TEST(CycleAccountMergeTest, IdentityCheckCatchesMismatch) {
  CycleAccount a;
  a.reset(2);
  a.row_data(0, 0)[0] = 100;
  a.row_data(1, 0)[3] = 50;
  EXPECT_TRUE(a.check_identity({100, 50}).empty());
  const auto violations = a.check_identity({100, 51});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("cpu 1"), std::string::npos);
}

}  // namespace
}  // namespace ssomp::trace
