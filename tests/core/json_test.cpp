// JSON export smoke/structure tests.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/diff.hpp"
#include "core/driver.hpp"
#include "core/json.hpp"
#include "trace/jsonv.hpp"

namespace ssomp::core {
namespace {

TEST(JsonTest, WellFormedAndComplete) {
  auto factory = apps::make_workload("EP", apps::AppScale::kTiny);
  ExperimentConfig cfg = ExperimentConfig::slipstream(
      2, slip::SlipstreamConfig::one_token_local());
  const auto result = run_experiment(cfg, factory);
  const std::string j = to_json(cfg, result);

  // Balanced braces and quotes.
  long depth = 0;
  long quotes = 0;
  for (char c : j) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '"') ++quotes;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);

  for (const char* key :
       {"\"config\"", "\"result\"", "\"breakdown\"", "\"memory\"",
        "\"request_classes\"", "\"slipstream\"", "\"cycles\"",
        "\"verified\":true", "\"mode\":\"slipstream\"",
        "\"sync\":\"LOCAL_SYNC\"", "\"tokens_consumed\"", "\"A-Timely\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing\n" << j;
  }
}

TEST(JsonTest, SingleRunJsonRoundTripsThroughTheStrictParser) {
  auto factory = apps::make_workload("EP", apps::AppScale::kTiny);
  ExperimentConfig cfg = ExperimentConfig::slipstream(
      2, slip::SlipstreamConfig::one_token_local());
  cfg.runtime.metrics = true;
  cfg.runtime.audit = true;
  const auto result = run_experiment(cfg, factory);
  const auto parsed = trace::parse_json(to_json(cfg, result));
  ASSERT_TRUE(parsed.ok) << parsed.error;

  // Metrics are structured JSON now, not a spliced opaque string.
  const trace::JsonValue* metrics = parsed.value.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  ASSERT_NE(metrics->find("counters"), nullptr);
  ASSERT_NE(metrics->find("histograms"), nullptr);

  // Cycle account: bucket totals present and summing to the rows.
  const trace::JsonValue* account = parsed.value.find("cycle_account");
  ASSERT_NE(account, nullptr);
  const trace::JsonValue* buckets = account->find("buckets");
  ASSERT_NE(buckets, nullptr);
  double bucket_sum = 0;
  for (const auto& [name, v] : buckets->object) bucket_sum += v.number;
  double row_sum = 0;
  for (const trace::JsonValue& slot : account->find("rows")->array) {
    for (const trace::JsonValue& cpu : slot.array) {
      for (const trace::JsonValue& cell : cpu.array) row_sum += cell.number;
    }
  }
  EXPECT_EQ(bucket_sum, row_sum);
  EXPECT_EQ(static_cast<sim::Cycles>(bucket_sum),
            result.cycle_account.total());
  const trace::JsonValue* res = parsed.value.find("result");
  ASSERT_NE(res, nullptr);
  const trace::JsonValue* ok = res->find("cycle_account_ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->boolean);
}

TEST(JsonTest, SweepAggregateValidatesAndRollupMatchesPoints) {
  ExperimentPlan plan;
  plan.name = "roundtrip";
  plan.scale = 1;
  plan.apps = {"EP", "IS"};
  plan.modes = {parse_mode_axis("single").value,
                parse_mode_axis("slip-L1").value};
  plan.ncmps = {2};
  plan.base.runtime.metrics = true;
  const SweepRun run = run_sweep(plan, apps::plan_resolver(),
                                 SweepOptions{.jobs = 2, .progress = {}});
  const LoadedSweep loaded = load_sweep_text(
      sweep_to_json(run, SweepJsonOptions{.host_seconds = false}), "test");
  ASSERT_TRUE(loaded.ok) << loaded.error;

  const trace::JsonValue* rollup = loaded.root.find("rollup");
  ASSERT_NE(rollup, nullptr);
  for (const char* group : {"all", "by_app", "by_mode", "by_ncmp"}) {
    EXPECT_NE(rollup->find(group), nullptr) << group;
  }
  // The merged rollup must agree with a by-hand fold of the points.
  double cycles_sum = 0;
  double account_sum = 0;
  for (const trace::JsonValue& p : loaded.root.find("points")->array) {
    cycles_sum += p.number_or("cycles");
    for (const auto& [name, v] :
         p.find("cycle_account")->find("buckets")->object) {
      account_sum += v.number;
    }
    EXPECT_NE(p.find("metrics"), nullptr);
  }
  const trace::JsonValue* all = rollup->find("all");
  EXPECT_EQ(all->number_or("points"),
            static_cast<double>(run.records.size()));
  EXPECT_EQ(all->number_or("cycles_total"), cycles_sum);
  double rollup_account = 0;
  for (const auto& [name, v] : all->find("cycle_buckets")->object) {
    rollup_account += v.number;
  }
  EXPECT_EQ(rollup_account, account_sum);
}

TEST(JsonTest, EscapesStrings) {
  ExperimentConfig cfg = ExperimentConfig::single(1);
  ExperimentResult r;
  r.workload.detail = "a \"quoted\" thing\\with backslash";
  const std::string j = to_json(cfg, r);
  EXPECT_NE(j.find("\\\""), std::string::npos);
  EXPECT_NE(j.find("\\\\"), std::string::npos);
}

}  // namespace
}  // namespace ssomp::core
