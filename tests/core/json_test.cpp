// JSON export smoke/structure tests.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/json.hpp"

namespace ssomp::core {
namespace {

TEST(JsonTest, WellFormedAndComplete) {
  auto factory = apps::make_workload("EP", apps::AppScale::kTiny);
  ExperimentConfig cfg = ExperimentConfig::slipstream(
      2, slip::SlipstreamConfig::one_token_local());
  const auto result = run_experiment(cfg, factory);
  const std::string j = to_json(cfg, result);

  // Balanced braces and quotes.
  long depth = 0;
  long quotes = 0;
  for (char c : j) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (c == '"') ++quotes;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0);

  for (const char* key :
       {"\"config\"", "\"result\"", "\"breakdown\"", "\"memory\"",
        "\"request_classes\"", "\"slipstream\"", "\"cycles\"",
        "\"verified\":true", "\"mode\":\"slipstream\"",
        "\"sync\":\"LOCAL_SYNC\"", "\"tokens_consumed\"", "\"A-Timely\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key << " missing\n" << j;
  }
}

TEST(JsonTest, EscapesStrings) {
  ExperimentConfig cfg = ExperimentConfig::single(1);
  ExperimentResult r;
  r.workload.detail = "a \"quoted\" thing\\with backslash";
  const std::string j = to_json(cfg, r);
  EXPECT_NE(j.find("\\\""), std::string::npos);
  EXPECT_NE(j.find("\\\\"), std::string::npos);
}

}  // namespace
}  // namespace ssomp::core
