// Sweep-aggregate diffing: a sweep diffed against itself is clean, any
// perturbation (cycles, gate flips, bucket shares, counters, missing
// points) is a regression, thresholds tolerate intended drift, and
// truncated or schema-violating input is rejected loudly instead of
// silently gating nothing.
#include <gtest/gtest.h>

#include <string>

#include "apps/registry.hpp"
#include "core/diff.hpp"
#include "core/driver.hpp"
#include "core/json.hpp"

namespace ssomp::core {
namespace {

using trace::JsonValue;

/// Mutable member lookup (JsonValue::find is const-only).
JsonValue* mfind(JsonValue& obj, const std::string& key) {
  for (auto& [name, v] : obj.object) {
    if (name == key) return &v;
  }
  return nullptr;
}

JsonValue* point_named(JsonValue& root, const std::string& label) {
  JsonValue* points = mfind(root, "points");
  for (JsonValue& p : points->array) {
    if (p.string_or("label") == label) return &p;
  }
  return nullptr;
}

/// One real sweep, executed once and parsed once for the whole suite.
const JsonValue& baseline() {
  static const JsonValue root = [] {
    ExperimentPlan plan;
    plan.name = "diff-fixture";
    plan.scale = 1;  // tiny
    plan.apps = {"EP"};
    plan.modes = {parse_mode_axis("single").value,
                  parse_mode_axis("slip-L1").value};
    plan.ncmps = {2};
    plan.base.runtime.audit = true;
    plan.base.runtime.metrics = true;
    const SweepRun run = run_sweep(plan, apps::plan_resolver(),
                                   SweepOptions{.jobs = 2, .progress = {}});
    const std::string json =
        sweep_to_json(run, SweepJsonOptions{.host_seconds = false});
    LoadedSweep loaded = load_sweep_text(json, "fixture");
    EXPECT_TRUE(loaded.ok) << loaded.error;
    return loaded.root;
  }();
  return root;
}

TEST(DiffTest, SelfDiffIsCleanWithAllZeroDeltas) {
  const SweepDiff d = diff_sweeps(baseline(), baseline(), {});
  EXPECT_TRUE(d.ok);
  EXPECT_TRUE(d.clean());
  EXPECT_EQ(d.regressions, 0);
  ASSERT_EQ(d.points.size(), 2u);
  for (const PointDiff& p : d.points) {
    EXPECT_FALSE(p.regressed);
    EXPECT_EQ(p.cycles_rel, 0.0);
    EXPECT_TRUE(p.notes.empty());
  }
  const std::string json = diff_to_json(d);
  EXPECT_NE(json.find("\"schema\":\"ssomp-diff-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(json.find("\"regressions\":0"), std::string::npos);
}

TEST(DiffTest, CycleGrowthRegressesAndThresholdTolerates) {
  JsonValue cand = baseline();
  JsonValue* p = point_named(cand, "EP/single");
  ASSERT_NE(p, nullptr);
  mfind(*p, "cycles")->number *= 1.05;  // +5%

  const SweepDiff strict = diff_sweeps(baseline(), cand, {});
  EXPECT_FALSE(strict.clean());
  EXPECT_EQ(strict.regressions, 1);
  bool noted = false;
  for (const std::string& n : strict.points[0].notes) {
    noted |= n.find("cycles") != std::string::npos;
  }
  EXPECT_TRUE(noted);

  DiffThresholds tolerant;
  tolerant.cycles_rel = 0.10;  // +10% allowed
  EXPECT_TRUE(diff_sweeps(baseline(), cand, tolerant).clean());

  // A cycle DECREASE is an improvement, never a regression.
  JsonValue faster = baseline();
  mfind(*point_named(faster, "EP/single"), "cycles")->number *= 0.5;
  EXPECT_TRUE(diff_sweeps(baseline(), faster, {}).clean());
}

TEST(DiffTest, GateFlipAlwaysRegressesEvenWithLooseThresholds) {
  DiffThresholds loose;
  loose.cycles_rel = 100.0;
  loose.share_abs = 1.0;
  loose.counter_rel = 100.0;
  for (const char* gate :
       {"verified", "audit_ok", "cycle_account_ok", "ok"}) {
    JsonValue cand = baseline();
    JsonValue* flag = mfind(*point_named(cand, "EP/slip-L1"), gate);
    ASSERT_NE(flag, nullptr) << gate;
    flag->boolean = false;
    const SweepDiff d = diff_sweeps(baseline(), cand, loose);
    EXPECT_FALSE(d.clean()) << gate;
  }
}

TEST(DiffTest, NonComputeBucketShareGrowthRegressesComputeGrowthDoesNot) {
  JsonValue cand = baseline();
  JsonValue* buckets = mfind(
      *mfind(*point_named(cand, "EP/slip-L1"), "cycle_account"), "buckets");
  ASSERT_NE(buckets, nullptr);
  JsonValue* compute = mfind(*buckets, "compute");
  JsonValue* barrier = mfind(*buckets, "barrier_stall");
  ASSERT_NE(compute, nullptr);
  ASSERT_NE(barrier, nullptr);
  const double moved = compute->number / 2.0;

  // Shift cycles compute -> barrier_stall: a wait bucket absorbing a
  // larger share is exactly the regression this gate exists to catch.
  compute->number -= moved;
  barrier->number += moved;
  const SweepDiff worse = diff_sweeps(baseline(), cand, {});
  EXPECT_FALSE(worse.clean());
  bool noted = false;
  for (const PointDiff& p : worse.points) {
    for (const std::string& n : p.notes) {
      noted |= n.find("barrier_stall") != std::string::npos;
    }
  }
  EXPECT_TRUE(noted);

  // The reverse shift (waits -> compute) is an improvement.
  JsonValue better = baseline();
  JsonValue* bbuckets = mfind(
      *mfind(*point_named(better, "EP/slip-L1"), "cycle_account"),
      "buckets");
  JsonValue* bcompute = mfind(*bbuckets, "compute");
  JsonValue* bbarrier = mfind(*bbuckets, "barrier_stall");
  const double back = bbarrier->number / 2.0;
  bbarrier->number -= back;
  bcompute->number += back;
  EXPECT_TRUE(diff_sweeps(baseline(), better, {}).clean());
}

TEST(DiffTest, CounterMovesRegressInEitherDirection) {
  JsonValue base_copy = baseline();
  JsonValue* base_slip =
      mfind(*point_named(base_copy, "EP/slip-L1"), "slipstream");
  ASSERT_NE(base_slip, nullptr);
  const double tokens = mfind(*base_slip, "tokens_inserted")->number;
  ASSERT_GT(tokens, 0.0);

  for (const double factor : {2.0, 0.5}) {
    JsonValue cand = baseline();
    mfind(*mfind(*point_named(cand, "EP/slip-L1"), "slipstream"),
          "tokens_inserted")
        ->number = tokens * factor;
    const SweepDiff d = diff_sweeps(baseline(), cand, {});
    EXPECT_FALSE(d.clean()) << "factor " << factor;
    DiffThresholds tolerant;
    tolerant.counter_rel = 2.0;  // |delta| up to 200% allowed
    EXPECT_TRUE(diff_sweeps(baseline(), cand, tolerant).clean())
        << "factor " << factor;
  }
}

TEST(DiffTest, GridMismatchRegressesBothWays) {
  JsonValue cand = baseline();
  mfind(cand, "points")->array.pop_back();
  const SweepDiff missing = diff_sweeps(baseline(), cand, {});
  EXPECT_FALSE(missing.clean());
  EXPECT_TRUE(missing.points.back().base_only);

  const SweepDiff extra = diff_sweeps(cand, baseline(), {});
  EXPECT_FALSE(extra.clean());
  EXPECT_TRUE(extra.points.back().cand_only);
}

TEST(DiffTest, TruncatedAndSchemaViolatingInputIsRejected) {
  const LoadedSweep truncated = load_sweep_text(
      R"({"schema":"ssomp-sweep-v1","points":[{"label":"a)", "stdin");
  EXPECT_FALSE(truncated.ok);
  EXPECT_NE(truncated.error.find("stdin"), std::string::npos);
  EXPECT_NE(truncated.error.find("invalid JSON"), std::string::npos);

  const LoadedSweep wrong_schema = load_sweep_text(
      R"({"schema":"something-else","plan":{},"points":[]})", "f");
  EXPECT_FALSE(wrong_schema.ok);
  EXPECT_NE(wrong_schema.error.find("schema"), std::string::npos);

  const LoadedSweep no_points =
      load_sweep_text(R"({"schema":"ssomp-sweep-v1","plan":{}})", "f");
  EXPECT_FALSE(no_points.ok);

  const LoadedSweep bad_point = load_sweep_text(
      R"({"schema":"ssomp-sweep-v1","plan":{},)"
      R"("points":[{"label":"a","ok":true}]})",
      "f");
  EXPECT_FALSE(bad_point.ok);  // ok point without cycles

  const SweepDiff d = diff_sweep_files("/nonexistent/base.json",
                                       "/nonexistent/cand.json", {});
  EXPECT_FALSE(d.ok);
  EXPECT_FALSE(d.clean());
  EXPECT_NE(diff_to_json(d).find("\"ok\":false"), std::string::npos);
}

TEST(DiffTest, HostSecondsAreNeverCompared) {
  // Aggregates WITH host timing still self-diff clean: wall-clock noise
  // must not be able to fail the gate (docs/PERFORMANCE.md).
  ExperimentPlan plan;
  plan.name = "host-seconds";
  plan.scale = 1;
  plan.apps = {"EP"};
  plan.modes = {parse_mode_axis("single").value};
  plan.ncmps = {2};
  const SweepRun a = run_sweep(plan, apps::plan_resolver(),
                               SweepOptions{.jobs = 1, .progress = {}});
  const SweepRun b = run_sweep(plan, apps::plan_resolver(),
                               SweepOptions{.jobs = 1, .progress = {}});
  const LoadedSweep la = load_sweep_text(sweep_to_json(a), "a");
  const LoadedSweep lb = load_sweep_text(sweep_to_json(b), "b");
  ASSERT_TRUE(la.ok) << la.error;
  ASSERT_TRUE(lb.ok) << lb.error;
  EXPECT_TRUE(diff_sweeps(la.root, lb.root, {}).clean());
}

}  // namespace
}  // namespace ssomp::core
