// SweepDriver: job resolution, deterministic result ordering, per-run
// failure isolation, and byte-identical aggregates at any job count.
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "apps/registry.hpp"
#include "core/driver.hpp"
#include "core/json.hpp"

namespace ssomp::core {
namespace {

/// A trivial simulated program: one parallel region of pure compute,
/// sized per-instance so distinct items produce distinct cycle counts.
class ComputeWorkload final : public Workload {
 public:
  explicit ComputeWorkload(int amount) : amount_(amount) {}
  [[nodiscard]] std::string name() const override { return "compute"; }
  void run(rt::SerialCtx& sc) override {
    sc.parallel([&](rt::ThreadCtx& t) { t.compute(amount_); });
  }
  [[nodiscard]] WorkloadResult verify() override {
    return {.verified = true,
            .checksum = static_cast<double>(amount_),
            .detail = "compute-only"};
  }

 private:
  int amount_;
};

WorkloadFactory compute_factory(int amount) {
  return [amount](rt::Runtime&) {
    return std::make_unique<ComputeWorkload>(amount);
  };
}

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.machine.ncmp = 2;
  return cfg;
}

TEST(ResolveJobsTest, ExplicitBeatsEnvBeatsHardware) {
  ::setenv("SSOMP_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(5), 5);
  EXPECT_EQ(resolve_jobs(0), 3);
  ::setenv("SSOMP_JOBS", "garbage", 1);
  EXPECT_GE(resolve_jobs(0), 1);  // falls through to hardware concurrency
  ::unsetenv("SSOMP_JOBS");
  EXPECT_GE(resolve_jobs(0), 1);
}

TEST(RunBatchTest, RecordsStayInItemOrderAtAnyJobCount) {
  std::vector<BatchItem> items;
  for (int i = 0; i < 6; ++i) {
    items.push_back({"item" + std::to_string(i), tiny_config(),
                     compute_factory(100 * (i + 1))});
  }
  const auto serial = run_batch(items, SweepOptions{.jobs = 1, .progress = {}});
  const auto parallel = run_batch(items, SweepOptions{.jobs = 8, .progress = {}});
  ASSERT_EQ(serial.size(), items.size());
  ASSERT_EQ(parallel.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(serial[i].label, items[i].label);
    EXPECT_EQ(parallel[i].label, items[i].label);
    ASSERT_TRUE(serial[i].ok);
    ASSERT_TRUE(parallel[i].ok);
    // Simulated results are independent of host scheduling.
    EXPECT_EQ(serial[i].result.cycles, parallel[i].result.cycles);
    EXPECT_GT(serial[i].host_seconds, 0.0);
  }
  // Distinct compute amounts -> monotonically growing region time.
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_GT(serial[i].result.cycles, serial[i - 1].result.cycles);
  }
}

TEST(RunBatchTest, ThrowingRunBecomesAnErrorRecordOthersComplete) {
  std::vector<BatchItem> items;
  items.push_back({"good0", tiny_config(), compute_factory(50)});
  items.push_back({"bad", tiny_config(), [](rt::Runtime&) ->
                       std::unique_ptr<Workload> {
                     throw std::runtime_error("factory exploded");
                   }});
  items.push_back({"good1", tiny_config(), compute_factory(60)});
  const auto records = run_batch(items, SweepOptions{.jobs = 4, .progress = {}});
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].ok);
  EXPECT_FALSE(records[1].ok);
  EXPECT_EQ(records[1].error, "factory exploded");
  EXPECT_TRUE(records[2].ok);
  EXPECT_TRUE(records[2].result.workload.verified);
}

TEST(RunSweepTest, UnknownAppIsIsolatedToItsPoint) {
  ExperimentPlan plan;
  plan.name = "isolation";
  plan.scale = 1;  // tiny
  plan.apps = {"EP", "BOGUS"};
  plan.modes = {parse_mode_axis("single").value};
  plan.ncmps = {2};
  const SweepRun run =
      run_sweep(plan, apps::plan_resolver(), SweepOptions{.jobs = 2, .progress = {}});
  ASSERT_EQ(run.records.size(), 2u);
  EXPECT_TRUE(run.records[0].ok);
  EXPECT_TRUE(run.records[0].result.workload.verified);
  EXPECT_FALSE(run.records[1].ok);
  EXPECT_NE(run.records[1].error.find("BOGUS"), std::string::npos);
  EXPECT_EQ(run.failures(), 1);
}

TEST(RunSweepTest, AggregateJsonIsByteIdenticalAtAnyJobCount) {
  ExperimentPlan plan;
  plan.name = "determinism";
  plan.scale = 1;
  plan.apps = {"EP", "IS"};
  plan.modes = paper_modes();
  plan.ncmps = {2};
  const SweepRun serial =
      run_sweep(plan, apps::plan_resolver(), SweepOptions{.jobs = 1, .progress = {}});
  const SweepRun parallel =
      run_sweep(plan, apps::plan_resolver(), SweepOptions{.jobs = 8, .progress = {}});
  const SweepJsonOptions no_host{.host_seconds = false};
  const std::string a = sweep_to_json(serial, no_host);
  const std::string b = sweep_to_json(parallel, no_host);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"ssomp-sweep-v1\""), std::string::npos);
  // Host timing is the only non-deterministic content, and it is present
  // only when asked for.
  EXPECT_EQ(a.find("host_seconds"), std::string::npos);
  EXPECT_NE(sweep_to_json(serial).find("host_seconds"), std::string::npos);
}

TEST(RunBatchTest, ProgressEventsCoverEveryRunWithMonotoneCompletion) {
  std::vector<BatchItem> items;
  for (int i = 0; i < 5; ++i) {
    items.push_back({"item" + std::to_string(i), tiny_config(),
                     compute_factory(100 * (i + 1))});
  }
  items.push_back({"boom", tiny_config(), [](rt::Runtime&) ->
                       std::unique_ptr<Workload> {
                     throw std::runtime_error("boom");
                   }});

  // The driver serializes callback invocations under its own mutex, so
  // the handler may record without locking.
  std::vector<ProgressEvent> events;
  SweepOptions opts;
  opts.jobs = 4;
  opts.progress = [&events](const ProgressEvent& ev) {
    events.push_back(ev);
  };
  const auto records = run_batch(items, opts);
  ASSERT_EQ(records.size(), items.size());

  std::size_t starts = 0, finishes = 0, fails = 0;
  std::size_t last_completed = 0;
  for (const ProgressEvent& ev : events) {
    EXPECT_EQ(ev.total, items.size());
    EXPECT_LT(ev.index, items.size());
    EXPECT_GE(ev.completed, last_completed);  // never goes backwards
    last_completed = ev.completed;
    switch (ev.kind) {
      case ProgressEvent::Kind::kStart:
        ++starts;
        break;
      case ProgressEvent::Kind::kFinish:
        ++finishes;
        EXPECT_GT(ev.host_seconds, 0.0);
        EXPECT_GE(ev.eta_seconds, 0.0);
        break;
      case ProgressEvent::Kind::kFail:
        ++fails;
        EXPECT_EQ(ev.label, "boom");
        break;
    }
  }
  // One start and one terminal event per run; the failure still counts
  // toward completion so the ETA keeps converging.
  EXPECT_EQ(starts, items.size());
  EXPECT_EQ(finishes, items.size() - 1);
  EXPECT_EQ(fails, 1u);
  EXPECT_EQ(last_completed, items.size());
}

TEST(RunSweepTest, RollupIsByteIdenticalAtAnyJobCountWithMetricsOn) {
  ExperimentPlan plan;
  plan.name = "rollup-determinism";
  plan.scale = 1;
  plan.apps = {"EP", "IS"};
  plan.modes = paper_modes();
  plan.ncmps = {2, 4};
  plan.base.runtime.metrics = true;
  const SweepRun serial =
      run_sweep(plan, apps::plan_resolver(), SweepOptions{.jobs = 1, .progress = {}});
  const SweepRun parallel =
      run_sweep(plan, apps::plan_resolver(), SweepOptions{.jobs = 8, .progress = {}});
  const SweepJsonOptions no_host{.host_seconds = false};
  const std::string a = sweep_to_json(serial, no_host);
  const std::string b = sweep_to_json(parallel, no_host);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"rollup\""), std::string::npos);
  EXPECT_NE(a.find("\"by_mode\""), std::string::npos);
  EXPECT_NE(a.find("\"cycle_buckets\""), std::string::npos);
}

TEST(RunSweepTest, JobsAreClampedToThePointCount) {
  ExperimentPlan plan;
  plan.name = "clamp";
  plan.scale = 1;
  plan.apps = {"EP"};
  plan.modes = {parse_mode_axis("single").value};
  plan.ncmps = {2};
  const SweepRun run =
      run_sweep(plan, apps::plan_resolver(), SweepOptions{.jobs = 64, .progress = {}});
  EXPECT_EQ(run.jobs, 1);
  EXPECT_GT(run.host_seconds_total, 0.0);
}

}  // namespace
}  // namespace ssomp::core
