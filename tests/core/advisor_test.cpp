// Per-region mode advisor tests.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "core/advisor.hpp"

namespace ssomp::core {
namespace {

TEST(AdvisorTest, ProducesConsistentAdvice) {
  machine::MachineConfig mc;
  mc.ncmp = 4;
  const auto advice =
      advise(mc, apps::make_workload("CG", apps::AppScale::kTiny));
  ASSERT_FALSE(advice.regions.empty());
  for (const auto& r : advice.regions) {
    EXPECT_LE(r.best_cycles, r.single_cycles) << "region " << r.region;
    EXPECT_GE(r.gain_vs_single, 0.0);
  }
  // Idealized per-region selection can never lose to any single choice.
  EXPECT_LE(advice.per_region_ideal_cycles, advice.best_overall_cycles);
  EXPECT_LE(advice.best_overall_cycles, advice.single_cycles);
}

TEST(AdvisorTest, DirectiveTextOnlyForSlipstreamWinners) {
  machine::MachineConfig mc;
  mc.ncmp = 2;
  const auto advice =
      advise(mc, apps::make_workload("MG", apps::AppScale::kTiny));
  for (const auto& r : advice.regions) {
    const bool is_slip = r.best.rfind("slip", 0) == 0;
    EXPECT_EQ(!r.directive.empty(), is_slip) << r.best;
    if (is_slip) {
      EXPECT_NE(r.directive.find("SLIPSTREAM("), std::string::npos);
    }
  }
}

TEST(AdvisorTest, FormatContainsEveryRegion) {
  machine::MachineConfig mc;
  mc.ncmp = 2;
  const auto advice =
      advise(mc, apps::make_workload("EP", apps::AppScale::kTiny));
  const std::string text = format_advice(advice);
  EXPECT_NE(text.find("whole-program winner"), std::string::npos);
  EXPECT_NE(text.find("per-region selection"), std::string::npos);
}

TEST(AdvisorTest, DefaultCandidatesArePaperConfigs) {
  const auto c = default_candidates();
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].name, "single");
  EXPECT_EQ(c[2].slip.type, slip::SyncType::kLocal);
  EXPECT_EQ(c[2].slip.tokens, 1);
  EXPECT_EQ(c[3].slip.tokens, 0);
}

}  // namespace
}  // namespace ssomp::core
