// ExperimentPlan: mode parsing, deterministic expansion, labels, seeds,
// and the textual plan-file format.
#include <gtest/gtest.h>

#include "core/plan.hpp"

namespace ssomp::core {
namespace {

TEST(ModeAxisTest, ParsesPaperModes) {
  auto single = parse_mode_axis("single");
  ASSERT_TRUE(single.ok);
  EXPECT_EQ(single.value.mode, rt::ExecutionMode::kSingle);
  EXPECT_FALSE(single.value.slip.enabled());

  auto dbl = parse_mode_axis("double");
  ASSERT_TRUE(dbl.ok);
  EXPECT_EQ(dbl.value.mode, rt::ExecutionMode::kDouble);

  auto l1 = parse_mode_axis("slip-L1");
  ASSERT_TRUE(l1.ok);
  EXPECT_EQ(l1.value.mode, rt::ExecutionMode::kSlipstream);
  EXPECT_EQ(l1.value.slip.type, slip::SyncType::kLocal);
  EXPECT_EQ(l1.value.slip.tokens, 1);

  auto g12 = parse_mode_axis("slip-G12");
  ASSERT_TRUE(g12.ok);
  EXPECT_EQ(g12.value.slip.type, slip::SyncType::kGlobal);
  EXPECT_EQ(g12.value.slip.tokens, 12);
}

TEST(ModeAxisTest, RejectsMalformedNames) {
  for (const char* bad : {"", "Single", "slip", "slip-", "slip-X1",
                          "slip-L", "slip-L1x", "triple"}) {
    EXPECT_FALSE(parse_mode_axis(bad).ok) << bad;
  }
}

TEST(PlanTest, ExpansionOrderIsTheDeclaredCrossProduct) {
  ExperimentPlan plan;
  plan.apps = {"CG", "MG"};
  plan.modes = paper_modes();
  plan.ncmps = {4, 16};
  ASSERT_EQ(plan.size(), 16u);

  const auto points = plan.expand();
  ASSERT_EQ(points.size(), 16u);
  // Declaration order: apps outermost, then modes, then ncmps.
  EXPECT_EQ(points[0].label, "CG/single/cmp4");
  EXPECT_EQ(points[1].label, "CG/single/cmp16");
  EXPECT_EQ(points[2].label, "CG/double/cmp4");
  EXPECT_EQ(points[8].label, "MG/single/cmp4");
  EXPECT_EQ(points[15].label, "MG/slip-G0/cmp16");
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
}

TEST(PlanTest, SingleValuedAxesLeaveNoLabelResidue) {
  ExperimentPlan plan;
  plan.apps = {"CG"};
  plan.modes = {parse_mode_axis("slip-L1").value};
  const auto points = plan.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].label, "CG/slip-L1");
}

TEST(PlanTest, PointConfigCarriesTheAxes) {
  ExperimentPlan plan;
  plan.apps = {"CG"};
  plan.modes = {parse_mode_axis("slip-G2").value};
  plan.ncmps = {8};
  const auto points = plan.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].config.machine.ncmp, 8);
  EXPECT_EQ(points[0].config.runtime.mode, rt::ExecutionMode::kSlipstream);
  EXPECT_EQ(points[0].config.runtime.slip.type, slip::SyncType::kGlobal);
  EXPECT_EQ(points[0].config.runtime.slip.tokens, 2);
}

TEST(PlanTest, VariantsMutateTheResolvedConfig) {
  ExperimentPlan plan;
  plan.apps = {"CG"};
  plan.modes = {parse_mode_axis("single").value};
  plan.variants = {
      {"slow-net",
       [](ExperimentConfig& c) { c.machine.mem.net_ns *= 4.0; }},
  };
  const auto points = plan.expand();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].label, "CG/single/slow-net");
  ExperimentPlan base;
  EXPECT_DOUBLE_EQ(points[0].config.machine.mem.net_ns,
                   base.base.machine.mem.net_ns * 4.0);
}

TEST(PlanTest, ScheduleOverrideSeesTheResolvedPoint) {
  ExperimentPlan plan;
  plan.apps = {"CG", "MG"};
  plan.modes = {parse_mode_axis("single").value};
  plan.schedule_override = [](const PlanPoint& p) {
    front::ScheduleClause sched;
    sched.kind = front::ScheduleKind::kDynamic;
    sched.chunk = p.app == "CG" ? 7 : 3;
    return sched;
  };
  const auto points = plan.expand();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].schedule.clause.chunk, 7);
  EXPECT_EQ(points[1].schedule.clause.chunk, 3);
}

TEST(PlanTest, SeedsDependOnAppOnly) {
  ExperimentPlan plan;
  plan.apps = {"CG", "MG"};
  plan.modes = paper_modes();
  plan.ncmps = {4, 16};
  plan.seed = 1234;
  const auto points = plan.expand();
  // Same app -> same workload data in every mode and machine size, so
  // cross-mode speedups compare identical work.
  for (const auto& p : points) {
    EXPECT_EQ(p.workload_seed, points[p.app == "CG" ? 0 : 8].workload_seed);
    EXPECT_NE(p.workload_seed, 0u);
  }
  EXPECT_NE(points[0].workload_seed, points[8].workload_seed);

  // The derivation is stable: a different plan with the same seed maps
  // the same app to the same workload seed.
  ExperimentPlan other;
  other.apps = {"CG"};
  other.modes = {parse_mode_axis("single").value};
  other.seed = 1234;
  EXPECT_EQ(other.expand()[0].workload_seed, points[0].workload_seed);
}

TEST(PlanTest, ZeroSeedKeepsAppDefaults) {
  ExperimentPlan plan;
  plan.apps = {"CG"};
  plan.modes = {parse_mode_axis("single").value};
  EXPECT_EQ(plan.expand()[0].workload_seed, 0u);
}

TEST(PlanFileTest, ParsesTheDocumentedFormat) {
  const auto parsed = parse_plan(
      "# a comment\n"
      "name  = smoke\n"
      "apps  = cg, MG\n"
      "modes = single, slip-L1\n"
      "ncmp  = 4, 8\n"
      "sched = static; dynamic,2\n"
      "scale = tiny\n"
      "seed  = 42\n"
      "audit = on\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const ExperimentPlan& plan = parsed.value;
  EXPECT_EQ(plan.name, "smoke");
  EXPECT_EQ(plan.apps, (std::vector<std::string>{"CG", "MG"}));
  ASSERT_EQ(plan.modes.size(), 2u);
  EXPECT_EQ(plan.modes[1].name, "slip-L1");
  EXPECT_EQ(plan.ncmps, (std::vector<int>{4, 8}));
  ASSERT_EQ(plan.schedules.size(), 2u);
  EXPECT_EQ(plan.schedules[1].clause.kind, front::ScheduleKind::kDynamic);
  EXPECT_EQ(plan.schedules[1].clause.chunk, 2);
  EXPECT_EQ(plan.scale, 1);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_TRUE(plan.base.runtime.audit);
  EXPECT_EQ(plan.size(), 2u * 2u * 2u * 2u);
}

TEST(PlanFileTest, ParsesResilienceKnobs) {
  const auto parsed = parse_plan(
      "apps = CG\n"
      "modes = slip-L1\n"
      "recovery = restart,5\n"
      "divergence = 2\n"
      "watchdog = 100000\n"
      "inject = r-stream-token-loss,0,4\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& rt_opts = parsed.value.base.runtime;
  EXPECT_EQ(rt_opts.recovery, rt::RecoveryPolicy::kRestart);
  EXPECT_EQ(rt_opts.restart_budget, 5);
  EXPECT_EQ(rt_opts.divergence_threshold, 2);
  EXPECT_EQ(rt_opts.watchdog_cycles, 100000u);
  EXPECT_EQ(rt_opts.fault.kind, slip::FaultKind::kRStreamTokenLoss);
  EXPECT_TRUE(rt_opts.audit);  // injection forces the audit on
}

TEST(PlanFileTest, ErrorsNameTheLine) {
  const auto missing_eq = parse_plan("apps = CG\nmodes = single\nbogus\n");
  ASSERT_FALSE(missing_eq.ok);
  EXPECT_NE(missing_eq.error.find("line 3"), std::string::npos)
      << missing_eq.error;

  const auto unknown = parse_plan("apps = CG\nfrobnicate = 7\n");
  ASSERT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("line 2"), std::string::npos);
  EXPECT_NE(unknown.error.find("frobnicate"), std::string::npos);

  const auto bad_mode = parse_plan("apps = CG\nmodes = slip-Q3\n");
  ASSERT_FALSE(bad_mode.ok);
  EXPECT_NE(bad_mode.error.find("slip-Q3"), std::string::npos);

  EXPECT_FALSE(parse_plan("modes = single\n").ok);  // no apps
  EXPECT_FALSE(parse_plan("apps = CG\n").ok);       // no modes
}

}  // namespace
}  // namespace ssomp::core
