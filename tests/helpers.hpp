// Shared test utilities: build a small machine + runtime and run a
// simulated program in one call.
#pragma once

#include <functional>

#include "machine/machine.hpp"
#include "rt/options.hpp"
#include "rt/runtime.hpp"

namespace ssomp::test {

struct Harness {
  explicit Harness(int ncmp = 4,
                   rt::ExecutionMode mode = rt::ExecutionMode::kSingle,
                   slip::SlipstreamConfig slip =
                       slip::SlipstreamConfig::zero_token_global()) {
    machine::MachineConfig mc;
    mc.ncmp = ncmp;
    machine = std::make_unique<machine::Machine>(mc);
    rt::RuntimeOptions opts;
    opts.mode = mode;
    opts.slip = slip;
    opts.audit = true;  // every test run doubles as a clean-run audit
    runtime = std::make_unique<rt::Runtime>(*machine, opts);
  }

  Harness(int ncmp, rt::RuntimeOptions opts) {
    machine::MachineConfig mc;
    mc.ncmp = ncmp;
    machine = std::make_unique<machine::Machine>(mc);
    opts.audit = true;
    runtime = std::make_unique<rt::Runtime>(*machine, opts);
  }

  sim::Cycles run(const std::function<void(rt::SerialCtx&)>& program) {
    return runtime->run(program);
  }

  std::unique_ptr<machine::Machine> machine;
  std::unique_ptr<rt::Runtime> runtime;
};

}  // namespace ssomp::test
