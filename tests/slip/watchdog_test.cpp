// Watchdog hang-detection tests (slip/watchdog.hpp) plus the engine
// timer-event semantics it depends on.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "slip/watchdog.hpp"

namespace ssomp::slip {
namespace {

using sim::TimeCategory;

TEST(WatchdogTest, DisabledWatchdogArmsNothing) {
  Watchdog w;
  EXPECT_FALSE(w.enabled());
  EXPECT_FALSE(w.arm(WatchSite::kBarrierToken, 0, 0).armed());
  sim::Engine e;
  w.configure(e, 0, [](const WatchdogReport&) {});
  EXPECT_FALSE(w.enabled());  // zero timeout still disabled
  EXPECT_FALSE(w.arm(WatchSite::kBarrierToken, 0, 0).armed());
}

TEST(WatchdogTest, TripRecordsReportAndInvokesRescue) {
  sim::Engine e;
  Watchdog w;
  sim::SimCpu& cpu = e.add_cpu("p0");
  w.configure(e, 100, [&](const WatchdogReport& rep) {
    EXPECT_EQ(rep.site, WatchSite::kSyscallToken);
    EXPECT_EQ(rep.node, 3);
    EXPECT_EQ(rep.cpu, cpu.id());
    EXPECT_EQ(rep.timeout, 100u);
    if (cpu.blocked()) cpu.wake();
  });
  cpu.start([&] {
    cpu.consume(10, TimeCategory::kBusy);
    auto guard = w.arm(WatchSite::kSyscallToken, 3, cpu.id());
    ASSERT_TRUE(guard.armed());
    cpu.block(TimeCategory::kTokenWait);  // nobody will ever wake this
    guard.cancel();  // too late: the timer already fired
  });
  e.run();
  ASSERT_EQ(w.trips(), 1u);
  const WatchdogReport& rep = w.reports().front();
  EXPECT_EQ(rep.wait_start, 10u);
  EXPECT_EQ(rep.fired_at, 110u);
  EXPECT_NE(rep.describe().find("syscall-token"), std::string::npos);
  EXPECT_NE(rep.describe().find("node 3"), std::string::npos);
}

TEST(WatchdogTest, DisarmedGuardNeverTripsNorAdvancesTime) {
  sim::Engine e;
  Watchdog w;
  w.configure(e, 100, [](const WatchdogReport&) { FAIL() << "tripped"; });
  sim::SimCpu& cpu = e.add_cpu("p0");
  cpu.start([&] {
    auto guard = w.arm(WatchSite::kTeamBarrier, 0, cpu.id());
    cpu.consume(10, TimeCategory::kBusy);  // "wait" completes quickly
    guard.cancel();
  });
  e.run();
  EXPECT_EQ(w.trips(), 0u);
  // A clean run with the watchdog armed is cycle-identical to one
  // without it: the disarmed timer is dropped without being fired.
  EXPECT_EQ(e.now(), 10u);
}

TEST(WatchdogTest, SiteNamesAreStable) {
  EXPECT_EQ(to_string(WatchSite::kBarrierToken), "barrier-token");
  EXPECT_EQ(to_string(WatchSite::kSyscallToken), "syscall-token");
  EXPECT_EQ(to_string(WatchSite::kTeamBarrier), "team-barrier");
  EXPECT_EQ(to_string(WatchSite::kHangPark), "hang-park");
}

}  // namespace
}  // namespace ssomp::slip
