// Watchdog hang-detection tests (slip/watchdog.hpp) plus the engine
// timer-event semantics it depends on, and the watchdog x degradation
// interleaving contract.
#include <gtest/gtest.h>

#include "rt/degrade.hpp"
#include "sim/engine.hpp"
#include "slip/pair.hpp"
#include "slip/watchdog.hpp"

namespace ssomp::slip {
namespace {

using sim::TimeCategory;

TEST(WatchdogTest, DisabledWatchdogArmsNothing) {
  Watchdog w;
  EXPECT_FALSE(w.enabled());
  EXPECT_FALSE(w.arm(WatchSite::kBarrierToken, 0, 0).armed());
  sim::Engine e;
  w.configure(e, 0, [](const WatchdogReport&) {});
  EXPECT_FALSE(w.enabled());  // zero timeout still disabled
  EXPECT_FALSE(w.arm(WatchSite::kBarrierToken, 0, 0).armed());
}

TEST(WatchdogTest, TripRecordsReportAndInvokesRescue) {
  sim::Engine e;
  Watchdog w;
  sim::SimCpu& cpu = e.add_cpu("p0");
  w.configure(e, 100, [&](const WatchdogReport& rep) {
    EXPECT_EQ(rep.site, WatchSite::kSyscallToken);
    EXPECT_EQ(rep.node, 3);
    EXPECT_EQ(rep.cpu, cpu.id());
    EXPECT_EQ(rep.timeout, 100u);
    if (cpu.blocked()) cpu.wake();
  });
  cpu.start([&] {
    cpu.consume(10, TimeCategory::kBusy);
    auto guard = w.arm(WatchSite::kSyscallToken, 3, cpu.id());
    ASSERT_TRUE(guard.armed());
    cpu.block(TimeCategory::kTokenWait);  // nobody will ever wake this
    guard.cancel();  // too late: the timer already fired
  });
  e.run();
  ASSERT_EQ(w.trips(), 1u);
  const WatchdogReport& rep = w.reports().front();
  EXPECT_EQ(rep.wait_start, 10u);
  EXPECT_EQ(rep.fired_at, 110u);
  EXPECT_NE(rep.describe().find("syscall-token"), std::string::npos);
  EXPECT_NE(rep.describe().find("node 3"), std::string::npos);
}

TEST(WatchdogTest, DisarmedGuardNeverTripsNorAdvancesTime) {
  sim::Engine e;
  Watchdog w;
  w.configure(e, 100, [](const WatchdogReport&) { FAIL() << "tripped"; });
  sim::SimCpu& cpu = e.add_cpu("p0");
  cpu.start([&] {
    auto guard = w.arm(WatchSite::kTeamBarrier, 0, cpu.id());
    cpu.consume(10, TimeCategory::kBusy);  // "wait" completes quickly
    guard.cancel();
  });
  e.run();
  EXPECT_EQ(w.trips(), 0u);
  // A clean run with the watchdog armed is cycle-identical to one
  // without it: the disarmed timer is dropped without being fired.
  EXPECT_EQ(e.now(), 10u);
}

// Watchdog x degradation interleaving: a watchdog rescue raises a
// recovery like any other diverging region, including during a
// probation trial. Two racing rescue sources in the same region (the
// timer plus a backstop-style repeat request) must count ONE recovery,
// the degradation state machine must not move mid-region (only the
// region-end verdict advances it — no re-promotion while a recovery is
// being served), and a rescue during probation sends the node back to
// the bench with exactly one more demotion.
TEST(WatchdogDegradeTest, RescueCountsOneStrikeAndNeverMovesStateMidRegion) {
  using rt::DegradationController;
  sim::Engine e;
  Watchdog w;
  DegradationController degrade(/*enabled=*/true, /*demote_after=*/1,
                                /*probation=*/1, /*ncmp=*/1);
  sim::SimCpu& r = e.add_cpu("r0");
  sim::SimCpu& a = e.add_cpu("a0");
  SlipPair pair(r.id(), a.id(), /*sem_access_cycles=*/3, 0x1000);
  pair.set_watchdog(&w, 0);
  pair.reset_for_region(/*initial_tokens=*/0);  // A parks immediately

  DegradationController::State expected = DegradationController::State::kHealthy;
  w.configure(e, 100, [&](const WatchdogReport& rep) {
    EXPECT_EQ(rep.node, 0);
    const std::uint64_t before = pair.recoveries();
    // The rescue, plus a racing second rescue source piling on.
    pair.request_recovery(r);
    pair.request_recovery(r);
    EXPECT_EQ(pair.recoveries(), before + 1) << "rescue double-counted";
    // Only the region-end verdict moves the controller.
    EXPECT_EQ(degrade.state(0), expected);
    EXPECT_TRUE(degrade.slipstream_allowed(0));
  });

  a.start([&] {
    // Region 1 (healthy): no tokens ever inserted; the watchdog rescues.
    EXPECT_FALSE(pair.barrier_sem().consume(a, sim::TimeCategory::kTokenWait));
    (void)pair.ack_recovery();
    a.block(sim::TimeCategory::kIdle);  // degraded region 2 has no A-stream
    // Region 3 (probation trial): parks and is rescued again.
    EXPECT_FALSE(pair.barrier_sem().consume(a, sim::TimeCategory::kTokenWait));
    (void)pair.ack_recovery();
  });
  r.start([&] {
    r.consume(1000, sim::TimeCategory::kBusy);
    // Region 1 verdict: rescued region strikes out (demote_after=1).
    EXPECT_TRUE(pair.a_recovered_this_region());
    EXPECT_EQ(degrade.on_region_end(0, pair.a_recovered_this_region()),
              DegradationController::Transition::kDemoted);
    EXPECT_FALSE(degrade.slipstream_allowed(0));
    EXPECT_EQ(degrade.demotions(), 1u);
    // Region 2: served on the bench, no A-stream, trivially clean.
    EXPECT_EQ(degrade.on_region_end(0, false),
              DegradationController::Transition::kPromoted);
    EXPECT_EQ(degrade.state(0), DegradationController::State::kProbation);
    EXPECT_TRUE(degrade.slipstream_allowed(0));
    // Region 3: probation trial with a watchdog rescue mid-region.
    expected = DegradationController::State::kProbation;
    pair.reset_for_region(0);
    a.wake();
    r.consume(1000, sim::TimeCategory::kBusy);
    EXPECT_TRUE(pair.a_recovered_this_region());
    EXPECT_EQ(pair.recoveries(), 2u);  // one per rescued region
    EXPECT_EQ(degrade.on_region_end(0, pair.a_recovered_this_region()),
              DegradationController::Transition::kDemoted);
    EXPECT_EQ(degrade.state(0), DegradationController::State::kDegraded);
    EXPECT_EQ(degrade.demotions(), 2u);
    EXPECT_EQ(degrade.promotions(), 1u);
  });
  e.run();
  EXPECT_EQ(w.trips(), 2u);
}

TEST(WatchdogTest, SiteNamesAreStable) {
  EXPECT_EQ(to_string(WatchSite::kBarrierToken), "barrier-token");
  EXPECT_EQ(to_string(WatchSite::kSyscallToken), "syscall-token");
  EXPECT_EQ(to_string(WatchSite::kTeamBarrier), "team-barrier");
  EXPECT_EQ(to_string(WatchSite::kHangPark), "hang-park");
}

}  // namespace
}  // namespace ssomp::slip
