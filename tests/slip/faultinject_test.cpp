// Deterministic fault-injection layer tests (slip/faultinject.hpp).
#include <gtest/gtest.h>

#include "slip/faultinject.hpp"

namespace ssomp::slip {
namespace {

TEST(FaultPlanParseTest, KindOnlyUsesDefaults) {
  const auto p = parse_fault_plan("starve-token");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.value.kind, FaultKind::kStarveToken);
  EXPECT_EQ(p.value.node, 0);
  EXPECT_EQ(p.value.visit, 1u);
  EXPECT_TRUE(p.value.active());
}

TEST(FaultPlanParseTest, FullSpecParses) {
  const auto p = parse_fault_plan("corrupt-forward,3,7,42");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.value.kind, FaultKind::kCorruptForward);
  EXPECT_EQ(p.value.node, 3);
  EXPECT_EQ(p.value.visit, 7u);
  EXPECT_EQ(p.value.seed, 42u);
}

TEST(FaultPlanParseTest, NoneIsInactive) {
  const auto p = parse_fault_plan("none");
  ASSERT_TRUE(p.ok);
  EXPECT_FALSE(p.value.active());
}

TEST(FaultPlanParseTest, RejectsBadInput) {
  EXPECT_FALSE(parse_fault_plan("frobnicate").ok);
  EXPECT_FALSE(parse_fault_plan("skip-barrier,abc").ok);
  EXPECT_FALSE(parse_fault_plan("skip-barrier,0,0").ok);  // visit is 1-based
  EXPECT_FALSE(parse_fault_plan("skip-barrier,0,1,nan").ok);
  EXPECT_FALSE(parse_fault_plan("skip-barrier,0,1,2,3").ok);
}

TEST(FaultPlanParseTest, EveryKindRoundTrips) {
  for (FaultKind k : all_fault_kinds()) {
    const auto p = parse_fault_plan(to_string(k));
    EXPECT_TRUE(p.ok) << to_string(k);
    EXPECT_EQ(p.value.kind, k);
  }
  EXPECT_EQ(all_fault_kinds().size(), 9u);
}

TEST(FaultInjectorTest, InactivePlanNeverFires) {
  FaultInjector inj(FaultPlan{}, 2);
  SlipPair::Mailbox mb{0, 10, false};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(inj.on_r_token_insert(0), TokenAction::kNormal);
    EXPECT_EQ(inj.on_a_token_consume(1), TokenAction::kNormal);
    EXPECT_FALSE(inj.on_r_divergence_probe(0, true));
    EXPECT_FALSE(inj.on_forward(0, mb, true));
  }
  EXPECT_EQ(inj.fired(), 0u);
  EXPECT_EQ(mb.hi, 10);
}

TEST(FaultInjectorTest, FiresExactlyOnceAtNthVisitOnTargetNode) {
  FaultInjector inj({.kind = FaultKind::kSkipBarrier, .node = 1, .visit = 3},
                    2);
  // Wrong node: never fires, does not advance the target's visit count.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(inj.on_a_token_consume(0), TokenAction::kNormal);
  }
  EXPECT_EQ(inj.on_a_token_consume(1), TokenAction::kNormal);  // visit 1
  EXPECT_EQ(inj.on_a_token_consume(1), TokenAction::kNormal);  // visit 2
  EXPECT_EQ(inj.on_a_token_consume(1), TokenAction::kSkip);    // visit 3
  EXPECT_EQ(inj.on_a_token_consume(1), TokenAction::kNormal);  // after
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_EQ(inj.ledger(1).skipped_consumes, 1u);
  EXPECT_EQ(inj.ledger(0).skipped_consumes, 0u);
}

TEST(FaultInjectorTest, TokenKindsMapToActionsAndLedger) {
  {
    FaultInjector inj({.kind = FaultKind::kDuplicateBarrier}, 1);
    EXPECT_EQ(inj.on_a_token_consume(0), TokenAction::kDuplicate);
    EXPECT_EQ(inj.ledger(0).extra_consumes, 1u);
  }
  {
    FaultInjector inj({.kind = FaultKind::kStarveToken}, 1);
    EXPECT_EQ(inj.on_r_token_insert(0), TokenAction::kSkip);
    EXPECT_EQ(inj.ledger(0).suppressed_inserts, 1u);
  }
  {
    FaultInjector inj({.kind = FaultKind::kExtraToken}, 1);
    EXPECT_EQ(inj.on_r_token_insert(0), TokenAction::kDuplicate);
    EXPECT_EQ(inj.ledger(0).extra_inserts, 1u);
  }
}

TEST(FaultInjectorTest, RecoverInConsumeCountsOnlyWaitingVisits) {
  FaultInjector inj(
      {.kind = FaultKind::kRecoverInConsume, .node = 0, .visit = 2}, 1);
  // Probes with the A-stream not blocked are not eligible visits.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(inj.on_r_divergence_probe(0, /*a_waiting=*/false));
  }
  EXPECT_FALSE(inj.on_r_divergence_probe(0, true));  // waiting visit 1
  EXPECT_TRUE(inj.on_r_divergence_probe(0, true));   // waiting visit 2
  EXPECT_FALSE(inj.on_r_divergence_probe(0, true));  // already fired
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_EQ(inj.ledger(0).forced_recoveries, 1u);
}

TEST(FaultInjectorTest, RecoverInSyscallLeavesMailboxIntact) {
  FaultInjector inj({.kind = FaultKind::kRecoverInSyscall}, 1);
  SlipPair::Mailbox mb{5, 15, false};
  EXPECT_FALSE(inj.on_forward(0, mb, /*a_waiting=*/false));  // not eligible
  EXPECT_TRUE(inj.on_forward(0, mb, /*a_waiting=*/true));
  EXPECT_EQ(mb.lo, 5);
  EXPECT_EQ(mb.hi, 15);
  EXPECT_EQ(inj.ledger(0).forced_recoveries, 1u);
}

TEST(FaultInjectorTest, AStreamHangFiresOnceAtNthVisitOnTargetNode) {
  FaultInjector inj({.kind = FaultKind::kAStreamHang, .node = 1, .visit = 2},
                    2);
  EXPECT_FALSE(inj.on_a_hang(0));  // wrong node
  EXPECT_FALSE(inj.on_a_hang(1));  // visit 1
  EXPECT_TRUE(inj.on_a_hang(1));   // visit 2: park here
  EXPECT_FALSE(inj.on_a_hang(1));  // one-shot
  EXPECT_EQ(inj.fired(), 1u);
}

TEST(FaultInjectorTest, RStreamTokenLossIsPersistentAfterTheNthInsert) {
  FaultInjector inj(
      {.kind = FaultKind::kRStreamTokenLoss, .node = 0, .visit = 2}, 2);
  EXPECT_EQ(inj.on_r_token_insert(0), TokenAction::kNormal);  // visit 1
  EXPECT_EQ(inj.on_r_token_insert(0), TokenAction::kSkip);    // wire breaks
  EXPECT_EQ(inj.on_r_token_insert(0), TokenAction::kSkip);    // still broken
  EXPECT_EQ(inj.on_r_token_insert(1), TokenAction::kNormal);  // other node ok
  EXPECT_EQ(inj.fired(), 1u);  // one fault, many suppressions
  EXPECT_EQ(inj.ledger(0).suppressed_inserts, 2u);
  EXPECT_EQ(inj.ledger(1).suppressed_inserts, 0u);
}

TEST(FaultInjectorTest, CorruptForwardIsMemorySafeAndDeterministic) {
  auto corrupt_once = [](std::uint64_t seed) {
    FaultInjector inj({.kind = FaultKind::kCorruptForward, .seed = seed}, 1);
    SlipPair::Mailbox mb{5, 15, false};
    EXPECT_FALSE(inj.on_forward(0, mb, false));  // corruption, no recovery
    EXPECT_EQ(inj.ledger(0).corrupted_forwards, 1u);
    return mb;
  };
  const auto a = corrupt_once(123);
  const auto b = corrupt_once(123);
  // Same seed, same corruption (reproducible runs).
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.last, b.last);
  // Both corruption shapes shrink the chunk; bounds never widen.
  EXPECT_TRUE(a.hi == a.lo || a.last);
}

}  // namespace
}  // namespace ssomp::slip
