// Randomized token-semaphore property test against a reference counter
// model: whatever the interleaving of inserts and consumes, the counter
// equals T0 + inserted - consumed, never goes negative, and every blocked
// consume is eventually satisfied by an insert.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "slip/tokens.hpp"

namespace ssomp::slip {
namespace {

class TokenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TokenPropertyTest, CounterModelHolds) {
  const int initial = GetParam();
  sim::Engine engine;
  sim::SimCpu& a = engine.add_cpu("a");
  sim::SimCpu& r = engine.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(initial);

  constexpr int kOps = 400;
  int consumed = 0;
  a.start([&] {
    sim::Rng rng(42);
    for (int i = 0; i < kOps; ++i) {
      a.consume(1 + rng.next_below(120), sim::TimeCategory::kBusy);
      ASSERT_TRUE(sem.consume(a, sim::TimeCategory::kTokenWait));
      ++consumed;
      // Counter never negative, and respects the conservation law.
      ASSERT_GE(sem.count(), 0);
      ASSERT_EQ(sem.count(),
                initial + static_cast<int>(sem.total_inserted()) - consumed);
    }
  });
  r.start([&] {
    sim::Rng rng(43);
    for (int i = 0; i < kOps; ++i) {
      r.consume(1 + rng.next_below(120), sim::TimeCategory::kBusy);
      sem.insert(r);
    }
  });
  engine.run();
  ASSERT_TRUE(a.finished());
  ASSERT_TRUE(r.finished());
  EXPECT_EQ(sem.total_consumed(), static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(sem.total_inserted(), static_cast<std::uint64_t>(kOps));
  EXPECT_EQ(sem.count(), initial);
}

INSTANTIATE_TEST_SUITE_P(InitialTokens, TokenPropertyTest,
                         ::testing::Values(0, 1, 2, 4, 8));

TEST(TokenPropertyTest, ConsumerNeverOvertakesAllowance) {
  // With T0 tokens, the consumer can never have consumed more than
  // inserted + T0 at any instant.
  constexpr int kT0 = 2;
  sim::Engine engine;
  sim::SimCpu& a = engine.add_cpu("a");
  sim::SimCpu& r = engine.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(kT0);
  int consumed = 0;
  a.start([&] {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(sem.consume(a, sim::TimeCategory::kTokenWait));
      ++consumed;
      ASSERT_LE(consumed, static_cast<int>(sem.total_inserted()) + kT0);
      a.consume(1, sim::TimeCategory::kBusy);
    }
  });
  r.start([&] {
    for (int i = 0; i < 100; ++i) {
      r.consume(500, sim::TimeCategory::kBusy);  // slow producer
      sem.insert(r);
    }
  });
  engine.run();
  EXPECT_TRUE(a.finished());
}

}  // namespace
}  // namespace ssomp::slip
