// Token semaphore and A/R pair tests (paper §2.2, Figure 1).
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "slip/config.hpp"
#include "slip/pair.hpp"
#include "slip/tokens.hpp"

namespace ssomp::slip {
namespace {

using sim::TimeCategory;

TEST(TokenSemaphoreTest, ConsumeAvailableTokenDoesNotBlock) {
  sim::Engine e;
  sim::SimCpu& a = e.add_cpu("a");
  bool consumed = false;
  TokenSemaphore sem(3);
  sem.initialize(2);
  a.start([&] { consumed = sem.consume(a, TimeCategory::kTokenWait); });
  e.run();
  EXPECT_TRUE(consumed);
  EXPECT_EQ(sem.count(), 1);
  EXPECT_EQ(sem.total_consumed(), 1u);
}

TEST(TokenSemaphoreTest, ConsumeBlocksUntilInsert) {
  sim::Engine e;
  sim::SimCpu& a = e.add_cpu("a");
  sim::SimCpu& r = e.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(0);
  sim::Cycles a_done = 0;
  a.start([&] {
    EXPECT_TRUE(sem.consume(a, TimeCategory::kTokenWait));
    a_done = e.now();
  });
  r.start([&] {
    r.consume(1000, TimeCategory::kBusy);
    sem.insert(r);
  });
  e.run();
  EXPECT_GE(a_done, 1000u);
  EXPECT_EQ(sem.count(), 0);
  // The A-stream's wait was attributed to TokenWait.
  EXPECT_GT(a.breakdown().get(TimeCategory::kTokenWait), 900u);
}

TEST(TokenSemaphoreTest, CountReflectsInsertMinusConsume) {
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(1);
  r.start([&] {
    sem.insert(r);
    sem.insert(r);
    EXPECT_EQ(sem.read_count(r), 3);
    EXPECT_TRUE(sem.try_consume(r));
    EXPECT_EQ(sem.count(), 2);
  });
  e.run();
}

TEST(TokenSemaphoreTest, TryConsumeFailsOnEmpty) {
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(0);
  bool got = true;
  r.start([&] { got = sem.try_consume(r); });
  e.run();
  EXPECT_FALSE(got);
}

TEST(TokenSemaphoreTest, OperationsChargeAccessLatency) {
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  TokenSemaphore sem(5);
  sem.initialize(1);
  r.start([&] {
    sem.insert(r);
    (void)sem.read_count(r);
    EXPECT_TRUE(sem.try_consume(r));
  });
  e.run();
  EXPECT_EQ(e.now(), 15u);  // 3 ops x 5 cycles
}

TEST(TokenSemaphoreTest, PoisonWakesWaiterWithoutToken) {
  sim::Engine e;
  sim::SimCpu& a = e.add_cpu("a");
  sim::SimCpu& r = e.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(0);
  bool got = true;
  a.start([&] { got = sem.consume(a, TimeCategory::kTokenWait); });
  r.start([&] {
    r.consume(100, TimeCategory::kBusy);
    sem.poison(r);
  });
  e.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(sem.count(), 0);
}

TEST(TokenSemaphoreTest, FigureOneProtocol) {
  // Figure 1: with T0 = 1 (one-token local), the A-stream can skip one
  // barrier immediately but blocks on the second until the R-stream
  // reaches its first barrier.
  sim::Engine e;
  sim::SimCpu& a = e.add_cpu("a");
  sim::SimCpu& r = e.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(1);
  std::vector<sim::Cycles> a_barriers;
  a.start([&] {
    for (int b = 0; b < 2; ++b) {
      a.consume(50, TimeCategory::kBusy);  // session work (shortened)
      EXPECT_TRUE(sem.consume(a, TimeCategory::kTokenWait));
      a_barriers.push_back(e.now());
    }
  });
  r.start([&] {
    for (int b = 0; b < 2; ++b) {
      r.consume(500, TimeCategory::kBusy);  // full session work
      sem.insert(r);                        // local insertion: on entry
    }
  });
  e.run();
  ASSERT_EQ(a_barriers.size(), 2u);
  EXPECT_LT(a_barriers[0], 100u);   // first barrier skipped via T0
  EXPECT_GE(a_barriers[1], 500u);   // second waits for R's first insert
}

TEST(SlipPairTest, ResetInitializesBothSemaphores) {
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(2);
  EXPECT_EQ(p.barrier_sem().count(), 2);
  EXPECT_EQ(p.syscall_sem().count(), 0);
  EXPECT_EQ(p.initial_tokens(), 2);
  EXPECT_EQ(p.r_barriers(), 0u);
  EXPECT_FALSE(p.recovery_requested());
}

TEST(SlipPairTest, BarrierCountersTrackLag) {
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(0);
  p.note_r_barrier();
  p.note_r_barrier();
  p.note_a_barrier();
  EXPECT_EQ(p.r_barriers(), 2u);
  EXPECT_EQ(p.a_barriers(), 1u);
}

TEST(SlipPairTest, RecoveryLifecycle) {
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(0);
  r.start([&] {
    p.request_recovery(r);
    EXPECT_TRUE(p.recovery_requested());
    p.request_recovery(r);  // idempotent
    EXPECT_EQ(p.recoveries(), 1u);
  });
  e.run();
  p.ack_recovery();
  EXPECT_FALSE(p.recovery_requested());
  EXPECT_TRUE(p.a_recovered_this_region());
  p.reset_for_region(0);
  EXPECT_FALSE(p.a_recovered_this_region());
}

TEST(TokenSemaphoreTest, PoisonInWokenNotResumedWindowStillPoisons) {
  // wake() clears blocked_ immediately but the waiter's fiber resumes at
  // a later event. A poison landing in that window (after an insert has
  // already woken the waiter) must still be observed: consume() returns
  // false and the inserted token is retained.
  sim::Engine e;
  sim::SimCpu& a = e.add_cpu("a");
  sim::SimCpu& r = e.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(0);
  bool got = true;
  a.start([&] { got = sem.consume(a, TimeCategory::kTokenWait); });
  r.start([&] {
    r.consume(100, TimeCategory::kBusy);
    sem.insert(r);   // wakes A; A has not resumed yet
    sem.poison(r);   // must latch, not get lost
  });
  e.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(sem.count(), 1);  // token survives the aborted consume
  EXPECT_EQ(sem.total_consumed(), 0u);
}

TEST(TokenSemaphoreTest, PoisonThenInsertBeforeResumeStillPoisons) {
  // Reverse interleaving: the poison wakes the waiter, then a token is
  // inserted before the waiter resumes. The poison must still win.
  sim::Engine e;
  sim::SimCpu& a = e.add_cpu("a");
  sim::SimCpu& r = e.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(0);
  bool got = true;
  a.start([&] { got = sem.consume(a, TimeCategory::kTokenWait); });
  r.start([&] {
    r.consume(100, TimeCategory::kBusy);
    sem.poison(r);
    sem.insert(r);
  });
  e.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(sem.count(), 1);
}

TEST(TokenSemaphoreTest, PoisonWithNoWaiterIsNoOpAndNotSticky) {
  // A poison with no registered waiter must not latch: a later consume
  // with a token available succeeds normally.
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  TokenSemaphore sem(3);
  sem.initialize(1);
  bool got = false;
  r.start([&] {
    sem.poison(r);  // nobody waiting
    got = sem.consume(r, TimeCategory::kTokenWait);
  });
  e.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(sem.count(), 0);
}

TEST(SlipPairTest, RepeatRecoveryRequestRePoisonsLaterWait) {
  // The first request can land while the A-stream is not waiting (its
  // poison is a no-op). A repeat request must still be able to kick a
  // wait entered afterwards, even though it does not count a new
  // recovery.
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  sim::SimCpu& a = e.add_cpu("a");
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(0);
  bool got = true;
  r.start([&] {
    p.request_recovery(r);  // A not waiting yet: poison evaporates
    r.consume(500, TimeCategory::kBusy);
    p.request_recovery(r);  // repeat: must re-poison the now-blocked wait
  });
  a.start([&] {
    a.consume(10, TimeCategory::kBusy);
    got = p.barrier_sem().consume(a, TimeCategory::kTokenWait);
  });
  e.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(p.recoveries(), 1u);  // still a single logical recovery
}

TEST(SlipPairTest, MailboxCountsPushPopDrop) {
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(0);
  p.mailbox_push({0, 10, false});
  p.mailbox_push({10, 20, false});
  p.mailbox_push({20, 20, true});
  EXPECT_EQ(p.mailbox_size(), 3u);
  const auto mb = p.mailbox_pop();
  EXPECT_EQ(mb.lo, 0);
  EXPECT_EQ(mb.hi, 10);
  EXPECT_EQ(p.mailbox_pushed(), 3u);
  EXPECT_EQ(p.mailbox_popped(), 1u);
  EXPECT_EQ(p.mailbox_dropped(), 0u);
  EXPECT_EQ(p.mailbox_size(), 2u);
}

TEST(SlipPairTest, MailboxDropsStalestPastDepthAndAccountsIt) {
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(0);
  const auto depth = SlipPair::kMailboxDepth;
  for (std::size_t i = 0; i < depth + 2; ++i) {
    p.mailbox_push({static_cast<long>(i), static_cast<long>(i + 1), false});
  }
  EXPECT_EQ(p.mailbox_size(), depth);
  EXPECT_EQ(p.mailbox_dropped(), 2u);
  // The stalest entries were dropped: the head is now entry #2.
  EXPECT_EQ(p.mailbox_pop().lo, 2);
}

TEST(SlipPairTest, ResetForRegionClearsMailbox) {
  // Regression: a recovery can unwind the A-stream with forwarded-but-
  // unconsumed decisions still queued; reset_for_region must clear them
  // or the next region's dynamic schedule pairs tokens with stale chunks.
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(0);
  p.mailbox_push({0, 10, false});
  p.mailbox_push({10, 20, true});
  p.reset_for_region(1);
  EXPECT_TRUE(p.mailbox_empty());
  EXPECT_EQ(p.mailbox_size(), 0u);
  // Cumulative counters survive (the auditor diffs them across regions).
  EXPECT_EQ(p.mailbox_pushed(), 2u);
}

TEST(TokenSemaphoreTest, DrainToRemovesSurplusAndAccountsIt) {
  TokenSemaphore sem(3);
  sem.initialize(5);
  EXPECT_EQ(sem.drain_to(2), 3u);
  EXPECT_EQ(sem.count(), 2);
  EXPECT_EQ(sem.total_drained(), 3u);
  EXPECT_EQ(sem.drain_to(4), 0u);  // deficit: nothing to remove
  EXPECT_EQ(sem.count(), 2);
  EXPECT_EQ(sem.drain_to(0), 2u);
  EXPECT_EQ(sem.count(), 0);
  EXPECT_EQ(sem.total_drained(), 5u);
}

TEST(SlipPairTest, AckRecoveryReconcilesSyscallChannel) {
  // Regression for the stale-state leak: an unwound A-stream used to
  // leave forwarded-but-unconsumed syscall tokens behind, which could
  // later pair with post-recovery mailbox entries (or vice versa).
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(1);
  r.start([&] {
    p.syscall_sem().insert(r);
    p.syscall_sem().insert(r);
    p.mailbox_push({0, 10, false});
    p.request_recovery(r);
  });
  e.run();
  const auto rec = p.ack_recovery();
  EXPECT_EQ(rec.syscall_drained, 2u);
  EXPECT_EQ(rec.mailbox_cleared, 1u);
  EXPECT_EQ(p.syscall_sem().count(), 0);
  EXPECT_TRUE(p.mailbox_empty());
  EXPECT_EQ(p.mailbox_cleared(), 1u);  // cumulative, for the auditor
  EXPECT_FALSE(p.recovery_requested());
  EXPECT_TRUE(p.a_recovered_this_region());
}

TEST(SlipPairTest, PrepareRestartResyncsBarrierPosition) {
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(1);
  r.start([&] {
    for (int i = 0; i < 5; ++i) {
      p.note_r_barrier();
      p.barrier_sem().insert(r);
    }
    p.note_a_barrier();  // the A-stream only got through one episode
  });
  e.run();
  EXPECT_EQ(p.barrier_sem().count(), 6);  // initial + 5 inserted
  EXPECT_EQ(p.prepare_restart(), 4u);     // resync distance: 5 - 1
  EXPECT_EQ(p.a_barriers(), 5u);          // jumped to R's episode
  EXPECT_EQ(p.barrier_sem().count(), 1);  // back to the initial allowance
  EXPECT_EQ(p.restarts_this_region(), 1u);
  EXPECT_EQ(p.restarts_total(), 1u);
  EXPECT_EQ(p.restart_skipped_barriers(), 4u);
  // A second restart with A already caught up skips nothing.
  EXPECT_EQ(p.prepare_restart(), 0u);
  EXPECT_EQ(p.restarts_this_region(), 2u);
}

TEST(SlipPairTest, RegionResetClearsPerRegionRestartState) {
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  p.reset_for_region(0);
  r.start([&] {
    p.note_r_barrier();
    p.barrier_sem().insert(r);
  });
  e.run();
  (void)p.prepare_restart();
  p.set_benched();
  p.note_benched_barrier();
  EXPECT_TRUE(p.a_benched());
  p.reset_for_region(0);
  EXPECT_FALSE(p.a_benched());
  EXPECT_EQ(p.restarts_this_region(), 0u);
  // Cumulative counters survive the reset for end-of-run harvesting.
  EXPECT_EQ(p.restarts_total(), 1u);
  EXPECT_EQ(p.benched_barriers(), 1u);
}

TEST(SlipConfigTest, PaperConfigurations) {
  const auto l1 = SlipstreamConfig::one_token_local();
  EXPECT_EQ(l1.type, SyncType::kLocal);
  EXPECT_EQ(l1.tokens, 1);
  const auto g0 = SlipstreamConfig::zero_token_global();
  EXPECT_EQ(g0.type, SyncType::kGlobal);
  EXPECT_EQ(g0.tokens, 0);
  EXPECT_TRUE(g0.enabled());
  EXPECT_FALSE(SlipstreamConfig::disabled().enabled());
}

TEST(SlipConfigTest, TypeNames) {
  EXPECT_EQ(to_string(SyncType::kGlobal), "GLOBAL_SYNC");
  EXPECT_EQ(to_string(SyncType::kLocal), "LOCAL_SYNC");
  EXPECT_EQ(to_string(SyncType::kRuntime), "RUNTIME_SYNC");
  EXPECT_EQ(to_string(SyncType::kNone), "NONE");
}

}  // namespace
}  // namespace ssomp::slip
