// Invariant-auditor tests (slip/audit.hpp): the auditor must pass clean
// protocol traces, compensate for injected faults via the ledger, and
// flag genuinely broken accounting.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "slip/audit.hpp"
#include "slip/faultinject.hpp"
#include "slip/pair.hpp"

namespace ssomp::slip {
namespace {

using sim::TimeCategory;

TEST(InvariantAuditorTest, DisabledAuditorChecksNothing) {
  InvariantAuditor aud(false, 1);
  aud.on_recovery_acked(0);  // would be a violation when enabled
  EXPECT_TRUE(aud.ok());
  EXPECT_EQ(aud.checks_performed(), 0u);
}

TEST(InvariantAuditorTest, CleanRegionLifecyclePasses) {
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  FaultInjector inj;  // inactive plan
  InvariantAuditor aud(true, 1);
  p.reset_for_region(1);
  aud.on_region_reset(0, p, inj);
  r.start([&] {
    // One R barrier (one insert), two A barriers: initial token + the
    // inserted one are both consumed, leaving the count at zero.
    p.note_r_barrier();
    p.barrier_sem().insert(r);
    EXPECT_TRUE(p.barrier_sem().try_consume(r));
    p.note_a_barrier();
    EXPECT_TRUE(p.barrier_sem().try_consume(r));
    p.note_a_barrier();
  });
  e.run();
  aud.on_region_end(0, p, inj);
  aud.on_run_end(0, p, inj);
  EXPECT_TRUE(aud.ok()) << aud.summary();
  EXPECT_GT(aud.checks_performed(), 0u);
}

TEST(InvariantAuditorTest, DetectsConsumeVisitMismatch) {
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  FaultInjector inj;
  InvariantAuditor aud(true, 1);
  p.reset_for_region(1);
  aud.on_region_reset(0, p, inj);
  r.start([&] {
    // A consume with no matching note_a_barrier: the per-visit accounting
    // no longer agrees with the semaphore totals.
    EXPECT_TRUE(p.barrier_sem().try_consume(r));
  });
  e.run();
  aud.on_region_end(0, p, inj);
  EXPECT_FALSE(aud.ok());
  EXPECT_FALSE(aud.violations().empty());
}

TEST(InvariantAuditorTest, LedgerCompensatesInjectedStarve) {
  // An R-side insert suppressed by the injector breaks the raw
  // insert==visits identity, but the ledger records the suppression and
  // the compensated audit must pass.
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  FaultInjector inj({.kind = FaultKind::kStarveToken, .node = 0, .visit = 1},
                    1);
  InvariantAuditor aud(true, 1);
  p.reset_for_region(1);
  aud.on_region_reset(0, p, inj);
  r.start([&] {
    p.note_r_barrier();
    // The injector suppresses this insert; the runtime honours kSkip.
    if (inj.on_r_token_insert(0) != TokenAction::kSkip) {
      p.barrier_sem().insert(r);
    }
    EXPECT_TRUE(p.barrier_sem().try_consume(r));  // A takes initial token
    p.note_a_barrier();
  });
  e.run();
  aud.on_region_end(0, p, inj);
  EXPECT_TRUE(aud.ok()) << aud.summary();
}

TEST(InvariantAuditorTest, DetectsStaleMailboxAtRegionReset) {
  SlipPair p(0, 1, 3, 0x8000);
  FaultInjector inj;
  InvariantAuditor aud(true, 1);
  p.reset_for_region(0);
  p.mailbox_push({0, 10, false});  // stale entry surviving into the reset
  aud.on_region_reset(0, p, inj);
  EXPECT_FALSE(aud.ok());
}

TEST(InvariantAuditorTest, RecoveryOrderingEnforced) {
  InvariantAuditor aud(true, 2);
  aud.on_recovery_requested(1);
  aud.on_recovery_acked(1);
  EXPECT_TRUE(aud.ok());
  aud.on_recovery_acked(1);  // ack with nothing outstanding
  EXPECT_FALSE(aud.ok());
}

TEST(InvariantAuditorTest, DoubleRequestWithoutAckIsViolation) {
  InvariantAuditor aud(true, 1);
  aud.on_recovery_requested(0);
  aud.on_recovery_requested(0);
  EXPECT_FALSE(aud.ok());
}

TEST(InvariantAuditorTest, UnreconciledAckIsAViolation) {
  // The ack-time invariant: after SlipPair::ack_recovery the syscall
  // channel must be empty on both sides. An ack recorded while tokens
  // or mailbox entries are still outstanding is the stale-state leak.
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  InvariantAuditor aud(true, 1);
  p.reset_for_region(0);
  r.start([&] {
    p.syscall_sem().insert(r);
    p.mailbox_push({0, 10, false});
    p.request_recovery(r);
  });
  e.run();
  aud.on_recovery_requested(0);
  aud.on_recovery_acked(0, p);  // without ack_recovery's reconcile
  EXPECT_FALSE(aud.ok());
}

TEST(InvariantAuditorTest, ReconciledAckPasses) {
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  InvariantAuditor aud(true, 1);
  p.reset_for_region(0);
  r.start([&] {
    p.syscall_sem().insert(r);
    p.mailbox_push({0, 10, false});
    p.request_recovery(r);
  });
  e.run();
  aud.on_recovery_requested(0);
  const auto rec = p.ack_recovery();
  EXPECT_EQ(rec.syscall_drained, 1u);
  EXPECT_EQ(rec.mailbox_cleared, 1u);
  aud.on_recovery_acked(0, p);
  EXPECT_TRUE(aud.ok()) << aud.summary();
}

TEST(InvariantAuditorTest, RestartAccountingReconciles) {
  // A restart drains surplus barrier tokens and fast-forwards the
  // A-stream past R's episodes; the region-end identities must absorb
  // both via total_drained() and restart_skipped_barriers().
  sim::Engine e;
  sim::SimCpu& r = e.add_cpu("r");
  SlipPair p(0, 1, 3, 0x8000);
  FaultInjector inj;
  InvariantAuditor aud(true, 1);
  p.reset_for_region(1);
  aud.on_region_reset(0, p, inj);
  r.start([&] {
    for (int i = 0; i < 3; ++i) {
      p.note_r_barrier();
      p.barrier_sem().insert(r);
    }
    p.request_recovery(r);
    aud.on_recovery_requested(0);
    (void)p.ack_recovery();
    aud.on_recovery_acked(0, p);
    (void)p.prepare_restart();  // jumps a_barriers 0 -> 3, drains to initial
    // Post-restart: one more R episode, which the A-stream consumes.
    p.note_r_barrier();
    p.barrier_sem().insert(r);
    EXPECT_TRUE(p.barrier_sem().try_consume(r));
    p.note_a_barrier();
  });
  e.run();
  aud.on_region_end(0, p, inj);
  EXPECT_TRUE(aud.ok()) << aud.summary();
}

TEST(InvariantAuditorTest, SummaryReportsCountsAndFirstViolation) {
  InvariantAuditor aud(true, 1);
  EXPECT_NE(aud.summary().find("0 violations"), std::string::npos);
  aud.on_recovery_acked(0);
  EXPECT_NE(aud.summary().find("1 violation"), std::string::npos);
  EXPECT_NE(aud.summary().find("acknowledgement"), std::string::npos);
}

}  // namespace
}  // namespace ssomp::slip
