// Model-checker suite: exhaustive verification of the token/recovery
// protocol over the canonical grid, counterexample -> live-replay
// fidelity (including the resurrectable legacy poison-drop bug), and
// the random-walk equivalence property between the extracted state
// machine and the live protocol objects.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "slip/model/checker.hpp"
#include "slip/model/grid.hpp"
#include "slip/model/model.hpp"
#include "slip/model/replay.hpp"
#include "slip/model/schedule.hpp"
#include "slip/protocol.hpp"

namespace ssomp::slip::model {
namespace {

/// Scoped resurrection of a fixed protocol bug (proto::LegacyBugs).
class LegacyBugGuard {
 public:
  LegacyBugGuard() : saved_(proto::legacy_bugs()) {}
  ~LegacyBugGuard() { proto::legacy_bugs() = saved_; }
  LegacyBugGuard(const LegacyBugGuard&) = delete;
  LegacyBugGuard& operator=(const LegacyBugGuard&) = delete;

 private:
  proto::LegacyBugs saved_;
};

/// The minimized counterexample the checker produced for the historical
/// "poison dropped in the wake window" TokenSemaphore bug (committed
/// verbatim; tests/slip/data/legacy_poison_drop.sched is the same
/// schedule for the slipcheck CLI regression). Six steps: A0 parks on
/// the syscall semaphore, R0 forwards and inserts (opening the wake
/// window), R0's next forward fires the recovery fault inside the
/// window, and A0's resume consumes a token past the dropped poison.
constexpr const char* kLegacyPoisonSchedule =
    "ssomp-schedule-v1\n"
    "ncmp 2\n"
    "tokens 1\n"
    "sync local\n"
    "regions 1\n"
    "barriers 1\n"
    "chunks 2\n"
    "mailbox-depth 4\n"
    "threshold 1\n"
    "policy bench\n"
    "restart-budget 3\n"
    "watchdog 0\n"
    "degrade 0 2 4\n"
    "fault recover-in-syscall,0,2,332181\n"
    "expect waiter resumed past a delivered poison\n"
    "step a 0\n"
    "step a 0\n"
    "step r 0\n"
    "step r 0\n"
    "step r 0\n"
    "step a 0\n";

void expect_grid_slice_clean(std::size_t shards, std::size_t shard) {
  const std::vector<ModelConfig> grid = default_grid();
  for (std::size_t i = shard; i < grid.size(); i += shards) {
    Model model(grid[i]);
    const CheckResult res = run_checker(model);
    EXPECT_TRUE(res.ok) << grid[i].describe() << "\nviolation: "
                        << res.violation;
    EXPECT_FALSE(res.truncated)
        << grid[i].describe() << " hit the state budget — the grid is "
        << "supposed to be exhaustively enumerable";
  }
}

// The full verification grid, sharded so a parallel ctest run overlaps
// the slices. Zero violations and zero truncations: every configuration
// is enumerated to completion.
TEST(ModelGridTest, ExhaustiveShard0of4) { expect_grid_slice_clean(4, 0); }
TEST(ModelGridTest, ExhaustiveShard1of4) { expect_grid_slice_clean(4, 1); }
TEST(ModelGridTest, ExhaustiveShard2of4) { expect_grid_slice_clean(4, 2); }
TEST(ModelGridTest, ExhaustiveShard3of4) { expect_grid_slice_clean(4, 3); }

TEST(ModelGridTest, GridCoversEveryFaultKindAndBothPolicies) {
  const std::vector<ModelConfig> grid = default_grid();
  std::vector<bool> kind_seen(16, false);
  bool bench = false, restart = false, degrade = false, global = false;
  bool two_tokens = false, watchdog = false;
  for (const ModelConfig& c : grid) {
    kind_seen[static_cast<std::size_t>(c.fault.kind)] = true;
    bench = bench || c.policy == Policy::kBench;
    restart = restart || c.policy == Policy::kRestart;
    degrade = degrade || c.degrade_enabled;
    global = global || c.sync == SyncType::kGlobal;
    two_tokens = two_tokens || c.tokens == 2;
    watchdog = watchdog || c.watchdog;
    EXPECT_EQ(c.ncmp, 2);
  }
  EXPECT_TRUE(kind_seen[static_cast<std::size_t>(FaultKind::kNone)]);
  for (FaultKind k : all_fault_kinds()) {
    EXPECT_TRUE(kind_seen[static_cast<std::size_t>(k)])
        << "grid misses fault kind " << to_string(k);
  }
  EXPECT_TRUE(bench && restart && degrade && global && two_tokens && watchdog);
}

// The checker's exploration is deterministic: same config, same result,
// same statistics — a prerequisite for committed counterexamples staying
// meaningful.
TEST(ModelCheckerTest, DeterministicExploration) {
  ModelConfig cfg;
  cfg.regions = 2;
  cfg.fault = parse_fault_plan("recover-in-consume,0,1").value;
  const CheckResult a = run_checker(Model(cfg));
  const CheckResult b = run_checker(Model(cfg));
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.stats.states_visited, b.stats.states_visited);
  EXPECT_EQ(a.stats.transitions, b.stats.transitions);
  EXPECT_EQ(a.stats.max_depth_seen, b.stats.max_depth_seen);
}

// Coverage sanity: the grid configs genuinely exercise the machinery
// they exist to verify (a checker that never reaches a recovery would
// vacuously pass).
TEST(ModelCheckerTest, FaultConfigsReachRecoveries) {
  ModelConfig cfg;
  cfg.regions = 2;
  cfg.fault = parse_fault_plan("recover-in-consume,0,1").value;
  const CheckResult res = run_checker(Model(cfg));
  ASSERT_TRUE(res.ok) << res.violation;
  EXPECT_GT(res.stats.faults_fired, 0u);
  EXPECT_GT(res.stats.recoveries, 0u);
}

TEST(ModelCheckerTest, RestartPolicyReachesRestarts) {
  ModelConfig cfg;
  cfg.regions = 2;
  cfg.policy = Policy::kRestart;
  cfg.fault = parse_fault_plan("recover-in-consume,0,1").value;
  const CheckResult res = run_checker(Model(cfg));
  ASSERT_TRUE(res.ok) << res.violation;
  EXPECT_GT(res.stats.restarts, 0u);
}

// Satellite: watchdog x degradation interaction. Exhaustively enumerate
// a config where the watchdog rescues a token-starved A-stream while the
// degradation controller is demoting/re-promoting that node across three
// regions. Every interleaving must keep the audit invariants (no
// double-counted strike, no mid-recovery re-promotion surfaces as a
// recovery-ledger or waiter-survival violation) and the space must
// actually contain demotions.
TEST(ModelCheckerTest, WatchdogTimesDegradeInterleavingsClean) {
  ModelConfig cfg;
  cfg.regions = 3;
  cfg.watchdog = true;
  cfg.degrade_enabled = true;
  cfg.demote_after = 1;
  cfg.probation = 1;
  cfg.policy = Policy::kRestart;
  cfg.restart_budget = 1;
  cfg.fault = parse_fault_plan("r-stream-token-loss,0,1").value;
  const CheckResult res = run_checker(Model(cfg));
  EXPECT_TRUE(res.ok) << res.violation;
  EXPECT_FALSE(res.truncated);
  EXPECT_GT(res.stats.demotions, 0u);
  EXPECT_GT(res.stats.recoveries, 0u);
}

// Schedule format round-trips losslessly.
TEST(ScheduleTest, SerializeParseRoundTrip) {
  ScheduleParse p = parse_schedule(kLegacyPoisonSchedule);
  ASSERT_TRUE(p.ok) << p.error;
  const std::string text = serialize_schedule(p.value);
  ScheduleParse q = parse_schedule(text);
  ASSERT_TRUE(q.ok) << q.error;
  EXPECT_EQ(serialize_schedule(q.value), text);
  EXPECT_EQ(q.value.actions.size(), 6u);
  EXPECT_EQ(q.value.expect, "waiter resumed past a delivered poison");
  EXPECT_EQ(q.value.config.fault.kind, FaultKind::kRecoverInSyscall);
}

TEST(ScheduleTest, ParserRejectsGarbage) {
  EXPECT_FALSE(parse_schedule("not-a-schedule\n").ok);
  EXPECT_FALSE(
      parse_schedule("ssomp-schedule-v1\nstep warble 0\n").ok);
  EXPECT_FALSE(parse_schedule("ssomp-schedule-v1\nstep a\n").ok);
  EXPECT_FALSE(parse_schedule("ssomp-schedule-v1\nfault bogus-kind\n").ok);
}

// The legacy poison-drop bug: with the historical TokenSemaphore::poison
// behavior resurrected, the checker finds the wake-window interleaving
// and its counterexample replays on the LIVE objects, reproducing the
// violation in lockstep. With today's code (hook off) the exact same
// schedule runs clean — the committed counterexample is the regression
// test proving the bug stays fixed.
TEST(LegacyPoisonDropTest, CheckerFindsWakeWindowCounterexample) {
  LegacyBugGuard guard;
  proto::legacy_bugs().drop_poison_in_wake_window = true;
  ScheduleParse p = parse_schedule(kLegacyPoisonSchedule);
  ASSERT_TRUE(p.ok) << p.error;
  const CheckResult res = run_checker(Model(p.value.config));
  ASSERT_FALSE(res.ok);
  EXPECT_EQ(res.violation, "waiter resumed past a delivered poison");
  // BFS counterexamples are minimal-depth; the committed one is 6 steps.
  EXPECT_EQ(res.schedule.size(), 6u);
}

TEST(LegacyPoisonDropTest, CounterexampleReplaysOnLiveObjects) {
  LegacyBugGuard guard;
  proto::legacy_bugs().drop_poison_in_wake_window = true;
  ScheduleParse p = parse_schedule(kLegacyPoisonSchedule);
  ASSERT_TRUE(p.ok) << p.error;
  const ReplayResult res = replay_schedule(p.value);
  EXPECT_TRUE(res.fidelity_ok) << res.fidelity_error;
  EXPECT_TRUE(res.violation_hit);
  EXPECT_EQ(res.violation, "waiter resumed past a delivered poison");
  EXPECT_TRUE(res.ok);
}

TEST(LegacyPoisonDropTest, FixedCodeRunsTheSameScheduleClean) {
  ScheduleParse p = parse_schedule(kLegacyPoisonSchedule);
  ASSERT_TRUE(p.ok) << p.error;
  const ReplayResult res = replay_schedule(p.value);
  EXPECT_TRUE(res.fidelity_ok) << res.fidelity_error;
  EXPECT_FALSE(res.violation_hit) << res.violation;
  EXPECT_TRUE(res.live_violations.empty());
  // expect-text present but not reproduced: the overall verdict is
  // "not ok", which is exactly what the fix is supposed to achieve.
  EXPECT_FALSE(res.ok);
}

// Satellite: state-machine / live-protocol equivalence on randomized
// schedules. Every random walk that is strictly replayable (no multi-wake
// batch with an interleaved same-node action) must run on the live
// objects with every synchronized state comparison passing. Walks the
// harness flags as not strictly replayable are skipped, but most must
// replay — the property is vacuous otherwise.
TEST(RandomWalkEquivalenceTest, LiveMatchesModelOnRandomSchedules) {
  std::vector<ModelConfig> configs;
  {
    ModelConfig c;
    c.regions = 2;
    configs.push_back(c);
    c.fault = parse_fault_plan("recover-in-consume,0,1").value;
    configs.push_back(c);
    c.fault = parse_fault_plan("starve-token,0,1").value;
    c.policy = Policy::kRestart;
    configs.push_back(c);
    c.fault = parse_fault_plan("recover-in-syscall,0,1").value;
    c.chunks = 2;
    c.barriers = 1;
    configs.push_back(c);
    c = ModelConfig{};
    c.sync = SyncType::kGlobal;
    c.regions = 2;
    c.fault = parse_fault_plan("skip-barrier,0,1").value;
    configs.push_back(c);
    c = ModelConfig{};
    c.watchdog = true;
    c.degrade_enabled = true;
    c.demote_after = 1;
    c.probation = 1;
    c.regions = 2;
    c.fault = parse_fault_plan("r-stream-token-loss,0,1").value;
    configs.push_back(c);
  }
  std::size_t replayed = 0, skipped = 0;
  for (const ModelConfig& cfg : configs) {
    Model model(cfg);
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      const CheckResult walk = random_walk(model, seed);
      ASSERT_TRUE(walk.ok) << cfg.describe() << " seed " << seed
                           << "\nviolation: " << walk.violation;
      ASSERT_FALSE(walk.truncated) << cfg.describe() << " seed " << seed;
      Schedule sched;
      sched.config = cfg;
      sched.actions = walk.schedule;
      const ReplayResult res = replay_schedule(sched);
      if (!res.fidelity_ok &&
          res.fidelity_error.find("not strictly replayable") !=
              std::string::npos) {
        ++skipped;
        continue;
      }
      EXPECT_TRUE(res.fidelity_ok)
          << cfg.describe() << " seed " << seed << "\n"
          << res.fidelity_error;
      EXPECT_FALSE(res.violation_hit)
          << cfg.describe() << " seed " << seed << "\n"
          << res.violation;
      EXPECT_TRUE(res.live_violations.empty())
          << cfg.describe() << " seed " << seed;
      ++replayed;
    }
  }
  // The property must not be vacuous: the bulk of the walks replays.
  EXPECT_GT(replayed, skipped);
  EXPECT_GE(replayed, configs.size() * 4);
}

// Satellite regression: mailbox-drop bookkeeping is per-region. A drop
// in an earlier region must NOT excuse an unpaired syscall token in a
// later one (the pre-fix cumulative check was vacuously true forever
// after the first drop).
TEST(ProtocolRegressionTest, MailboxDropExcuseDoesNotLeakAcrossRegions) {
  proto::PairState p;
  proto::TokenState bar, sys;
  EXPECT_EQ(proto::pair_reset_for_region(p, bar, sys, 1), nullptr);
  p.mb_pushed = 1;
  p.mb_dropped = 1;  // region-1 overflow
  EXPECT_TRUE(proto::pair_unpaired_token_explained(p));
  EXPECT_EQ(proto::pair_reset_for_region(p, bar, sys, 1), nullptr);
  EXPECT_FALSE(proto::pair_unpaired_token_explained(p))
      << "a previous region's drop leaked into this region's excuse";
  const bool dropped_again = proto::pair_mailbox_push(p, /*depth=*/0);
  EXPECT_TRUE(dropped_again);
  EXPECT_TRUE(proto::pair_unpaired_token_explained(p));
}

// Satellite regression: reset_for_region refuses to wipe a semaphore
// that still has a registered waiter or an undelivered poison — the
// staleness bugs the extraction surfaced.
TEST(ProtocolRegressionTest, RegionResetRejectsStaleSemaphoreState) {
  proto::TokenState t;
  const char* v = proto::token_initialize(t, 1);
  EXPECT_EQ(v, nullptr);
  proto::Acquire acq = proto::Acquire::kTaken;
  EXPECT_EQ(proto::token_consume_begin(t, acq), nullptr);
  EXPECT_EQ(acq, proto::Acquire::kTaken);
  EXPECT_EQ(proto::token_consume_begin(t, acq), nullptr);
  EXPECT_EQ(acq, proto::Acquire::kMustWait);  // waiter now registered
  v = proto::token_initialize(t, 1);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(std::string(v).find("registered waiter"), std::string::npos);

  // A live poison implies a registered waiter (and trips the waiter
  // guard above); the poison guard is the backstop against a lost
  // poison whose waiter flag was already wiped.
  proto::TokenState t2;
  t2.poisoned = true;
  v = proto::token_initialize(t2, 0);
  ASSERT_NE(v, nullptr);
  EXPECT_NE(std::string(v).find("pending poison"), std::string::npos);
}

}  // namespace
}  // namespace ssomp::slip::model
