// Recovery stress suite: every NAS app from the paper's suite, under both
// paper slipstream configurations, survives every injected fault.
//
// The correctness story this pins down: all A-stream work is speculative
// (stores never commit), so ANY perturbation of the token protocol — a
// skipped or duplicated barrier, a starved or surplus token, a recovery
// landing mid-wait, a corrupted forwarded scheduling decision — can only
// change timing and prefetch quality. Workload self-verification must
// still pass, and the invariant auditor must reconcile the books after
// compensating for the injected deltas.
#include <gtest/gtest.h>

#include <string>

#include "apps/registry.hpp"
#include "core/experiment.hpp"
#include "slip/config.hpp"
#include "slip/faultinject.hpp"

namespace ssomp::slip {
namespace {

struct StressCase {
  const char* app;
  SlipstreamConfig slip;
  FaultKind kind;
};

std::string case_name(const ::testing::TestParamInfo<StressCase>& info) {
  std::string s = info.param.app;
  s += info.param.slip.type == SyncType::kLocal ? "_L" : "_G";
  s += std::to_string(info.param.slip.tokens);
  s += "_";
  for (char c : to_string(info.param.kind)) s += c == '-' ? '_' : c;
  return s;
}

core::ExperimentResult run_with_fault(const char* app, SlipstreamConfig cfg,
                                      FaultPlan plan,
                                      front::ScheduleClause sched = {}) {
  auto factory = apps::make_workload(app, apps::AppScale::kTiny, sched);
  core::ExperimentConfig ec;
  ec.machine.ncmp = 2;
  ec.runtime.mode = rt::ExecutionMode::kSlipstream;
  ec.runtime.slip = cfg;
  ec.runtime.fault = plan;
  ec.runtime.audit = true;
  return core::run_experiment(ec, factory);
}

class RecoveryStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(RecoveryStressTest, SelfVerifiesAndAuditsClean) {
  const StressCase& c = GetParam();
  const auto res = run_with_fault(
      c.app, c.slip, {.kind = c.kind, .node = 0, .visit = 2});
  EXPECT_TRUE(res.workload.verified) << res.workload.detail;
  EXPECT_TRUE(res.invariants_ok);
  EXPECT_TRUE(res.audit_ok)
      << (res.audit_violations.empty() ? "" : res.audit_violations.front());
  EXPECT_GT(res.audit_checks, 0u);
  // The four barrier-token faults hit sites every app visits; the
  // recovery/forward faults need a blocked waiter or a dynamic schedule
  // and may legitimately never find an eligible visit here.
  switch (c.kind) {
    case FaultKind::kSkipBarrier:
    case FaultKind::kDuplicateBarrier:
    case FaultKind::kStarveToken:
    case FaultKind::kExtraToken:
      EXPECT_EQ(res.faults_injected, 1u);
      break;
    default:
      EXPECT_LE(res.faults_injected, 1u);
      break;
  }
}

std::vector<StressCase> all_cases() {
  std::vector<StressCase> cases;
  const auto l1 = SlipstreamConfig::one_token_local();
  const auto g0 = SlipstreamConfig::zero_token_global();
  for (const char* app : {"BT", "CG", "LU", "MG", "SP"}) {
    for (const auto& cfg : {l1, g0}) {
      for (FaultKind kind : all_fault_kinds()) {
        cases.push_back({app, cfg, kind});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(PaperSuite, RecoveryStressTest,
                         ::testing::ValuesIn(all_cases()), case_name);

TEST(RecoveryStressTest, CleanRunInjectsNothingAndAuditsClean) {
  for (const char* app : {"BT", "CG", "LU", "MG", "SP"}) {
    const auto res = run_with_fault(
        app, SlipstreamConfig::one_token_local(), FaultPlan{});
    EXPECT_TRUE(res.workload.verified) << app << ": " << res.workload.detail;
    EXPECT_TRUE(res.audit_ok)
        << app << ": "
        << (res.audit_violations.empty() ? "" : res.audit_violations.front());
    EXPECT_EQ(res.faults_injected, 0u);
  }
}

TEST(RecoveryStressTest, ForwardFaultsFireUnderDynamicSchedule) {
  // The syscall-wait and mailbox-corruption sites only exist when the
  // R-stream forwards dynamic scheduling decisions (§3.2.2).
  front::ScheduleClause dyn;
  dyn.kind = front::ScheduleKind::kDynamic;
  dyn.chunk = 2;
  for (FaultKind kind :
       {FaultKind::kRecoverInSyscall, FaultKind::kCorruptForward}) {
    const auto res =
        run_with_fault("CG", SlipstreamConfig::one_token_local(),
                       {.kind = kind, .node = 0, .visit = 1}, dyn);
    EXPECT_EQ(res.faults_injected, 1u) << to_string(kind);
    EXPECT_TRUE(res.workload.verified)
        << to_string(kind) << ": " << res.workload.detail;
    EXPECT_TRUE(res.audit_ok)
        << (res.audit_violations.empty() ? "" : res.audit_violations.front());
  }
}

TEST(RecoveryStressTest, ConsumeWaitFaultForcesRealRecovery) {
  // Zero-token global blocks the A-stream at every barrier, so the
  // recover-in-consume fault always finds an eligible visit and the
  // forced recovery must be acknowledged (slip stats count it).
  const auto res = run_with_fault(
      "CG", SlipstreamConfig::zero_token_global(),
      {.kind = FaultKind::kRecoverInConsume, .node = 0, .visit = 1});
  EXPECT_EQ(res.faults_injected, 1u);
  EXPECT_GE(res.slip.recoveries, 1u);
  EXPECT_TRUE(res.workload.verified) << res.workload.detail;
  EXPECT_TRUE(res.audit_ok)
      << (res.audit_violations.empty() ? "" : res.audit_violations.front());
}

}  // namespace
}  // namespace ssomp::slip
