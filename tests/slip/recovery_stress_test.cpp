// Recovery stress suite: every NAS app from the paper's suite, under both
// paper slipstream configurations, survives every injected fault.
//
// The correctness story this pins down: all A-stream work is speculative
// (stores never commit), so ANY perturbation of the token protocol — a
// skipped or duplicated barrier, a starved or surplus token, a recovery
// landing mid-wait, a corrupted forwarded scheduling decision — can only
// change timing and prefetch quality. Workload self-verification must
// still pass, and the invariant auditor must reconcile the books after
// compensating for the injected deltas.
#include <gtest/gtest.h>

#include <string>

#include "apps/registry.hpp"
#include "core/experiment.hpp"
#include "slip/config.hpp"
#include "slip/faultinject.hpp"

namespace ssomp::slip {
namespace {

struct StressCase {
  const char* app;
  SlipstreamConfig slip;
  FaultKind kind;
  rt::RecoveryPolicy policy = rt::RecoveryPolicy::kBench;
};

std::string case_name(const ::testing::TestParamInfo<StressCase>& info) {
  std::string s = info.param.app;
  s += info.param.slip.type == SyncType::kLocal ? "_L" : "_G";
  s += std::to_string(info.param.slip.tokens);
  s += "_";
  for (char c : to_string(info.param.kind)) s += c == '-' ? '_' : c;
  return s;
}

struct RunKnobs {
  front::ScheduleClause sched{};
  rt::RecoveryPolicy policy = rt::RecoveryPolicy::kBench;
  int divergence = 0;
  sim::Cycles watchdog = 0;
  rt::DegradeOptions degrade{};
  rt::ExecutionMode mode = rt::ExecutionMode::kSlipstream;
};

core::ExperimentResult run_case(const char* app, SlipstreamConfig cfg,
                                FaultPlan plan, const RunKnobs& knobs) {
  auto factory = apps::make_workload(app, apps::AppScale::kTiny, knobs.sched);
  core::ExperimentConfig ec;
  ec.machine.ncmp = 2;
  ec.runtime.mode = knobs.mode;
  ec.runtime.slip = cfg;
  ec.runtime.fault = plan;
  ec.runtime.audit = true;
  ec.runtime.recovery = knobs.policy;
  ec.runtime.divergence_threshold = knobs.divergence;
  ec.runtime.watchdog_cycles = knobs.watchdog;
  ec.runtime.degrade = knobs.degrade;
  return core::run_experiment(ec, factory);
}

core::ExperimentResult run_with_fault(const char* app, SlipstreamConfig cfg,
                                      FaultPlan plan,
                                      front::ScheduleClause sched = {}) {
  RunKnobs knobs;
  knobs.sched = sched;
  return run_case(app, cfg, plan, knobs);
}

class RecoveryStressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(RecoveryStressTest, SelfVerifiesAndAuditsClean) {
  const StressCase& c = GetParam();
  // Restart-policy cases run the full resilience stack: divergence
  // probing (so persistent faults are noticed mid-region) plus the
  // watchdog (so injected hangs are diagnosed instead of riding the
  // end-of-run backstop).
  RunKnobs knobs;
  knobs.policy = c.policy;
  if (c.policy == rt::RecoveryPolicy::kRestart) {
    knobs.divergence = 2;
    knobs.watchdog = 50000;
  }
  const auto res = run_case(c.app, c.slip,
                            {.kind = c.kind, .node = 0, .visit = 2}, knobs);
  EXPECT_TRUE(res.workload.verified) << res.workload.detail;
  EXPECT_TRUE(res.invariants_ok);
  EXPECT_TRUE(res.audit_ok)
      << (res.audit_violations.empty() ? "" : res.audit_violations.front());
  EXPECT_GT(res.audit_checks, 0u);
  // Every simulated cycle must land in exactly one accounting bucket
  // even while the recovery machinery is churning.
  EXPECT_TRUE(res.cycle_account_ok)
      << (res.cycle_account_violations.empty()
              ? ""
              : res.cycle_account_violations.front());
  // The four barrier-token faults hit sites every app visits; the
  // recovery/forward faults need a blocked waiter or a dynamic schedule
  // and may legitimately never find an eligible visit here.
  switch (c.kind) {
    case FaultKind::kSkipBarrier:
    case FaultKind::kDuplicateBarrier:
    case FaultKind::kStarveToken:
    case FaultKind::kExtraToken:
      EXPECT_EQ(res.faults_injected, 1u);
      break;
    default:
      EXPECT_LE(res.faults_injected, 1u);
      break;
  }
}

std::vector<StressCase> all_cases(rt::RecoveryPolicy policy) {
  std::vector<StressCase> cases;
  const auto l1 = SlipstreamConfig::one_token_local();
  const auto g0 = SlipstreamConfig::zero_token_global();
  for (const char* app : {"BT", "CG", "LU", "MG", "SP"}) {
    for (const auto& cfg : {l1, g0}) {
      for (FaultKind kind : all_fault_kinds()) {
        cases.push_back({app, cfg, kind, policy});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    PaperSuite, RecoveryStressTest,
    ::testing::ValuesIn(all_cases(rt::RecoveryPolicy::kBench)), case_name);

INSTANTIATE_TEST_SUITE_P(
    PaperSuiteRestart, RecoveryStressTest,
    ::testing::ValuesIn(all_cases(rt::RecoveryPolicy::kRestart)), case_name);

TEST(RecoveryStressTest, CleanRunInjectsNothingAndAuditsClean) {
  for (const char* app : {"BT", "CG", "LU", "MG", "SP"}) {
    const auto res = run_with_fault(
        app, SlipstreamConfig::one_token_local(), FaultPlan{});
    EXPECT_TRUE(res.workload.verified) << app << ": " << res.workload.detail;
    EXPECT_TRUE(res.audit_ok)
        << app << ": "
        << (res.audit_violations.empty() ? "" : res.audit_violations.front());
    EXPECT_EQ(res.faults_injected, 0u);
  }
}

TEST(RecoveryStressTest, ForwardFaultsFireUnderDynamicSchedule) {
  // The syscall-wait and mailbox-corruption sites only exist when the
  // R-stream forwards dynamic scheduling decisions (§3.2.2).
  front::ScheduleClause dyn;
  dyn.kind = front::ScheduleKind::kDynamic;
  dyn.chunk = 2;
  for (FaultKind kind :
       {FaultKind::kRecoverInSyscall, FaultKind::kCorruptForward}) {
    const auto res =
        run_with_fault("CG", SlipstreamConfig::one_token_local(),
                       {.kind = kind, .node = 0, .visit = 1}, dyn);
    EXPECT_EQ(res.faults_injected, 1u) << to_string(kind);
    EXPECT_TRUE(res.workload.verified)
        << to_string(kind) << ": " << res.workload.detail;
    EXPECT_TRUE(res.audit_ok)
        << (res.audit_violations.empty() ? "" : res.audit_violations.front());
  }
}

TEST(RecoveryStressTest, ConsumeWaitFaultForcesRealRecovery) {
  // Zero-token global blocks the A-stream at every barrier, so the
  // recover-in-consume fault always finds an eligible visit and the
  // forced recovery must be acknowledged (slip stats count it).
  const auto res = run_with_fault(
      "CG", SlipstreamConfig::zero_token_global(),
      {.kind = FaultKind::kRecoverInConsume, .node = 0, .visit = 1});
  EXPECT_EQ(res.faults_injected, 1u);
  EXPECT_GE(res.slip.recoveries, 1u);
  EXPECT_TRUE(res.workload.verified) << res.workload.detail;
  EXPECT_TRUE(res.audit_ok)
      << (res.audit_violations.empty() ? "" : res.audit_violations.front());
}

TEST(RecoveryStressTest, RestartKeepsRunAheadThatBenchForfeits) {
  // Persistent token loss forces a divergence every region. Under the
  // bench policy the A-stream sits out the rest of each diverged region
  // (counted as benched barriers); under restart it resynchronizes and
  // keeps running ahead, so it must bench strictly fewer barriers while
  // reporting actual restarts. Both must still verify and audit clean.
  const FaultPlan loss{
      .kind = FaultKind::kRStreamTokenLoss, .node = 0, .visit = 2};
  RunKnobs bench;
  bench.divergence = 2;
  bench.watchdog = 50000;
  RunKnobs restart = bench;
  restart.policy = rt::RecoveryPolicy::kRestart;

  const auto b =
      run_case("CG", SlipstreamConfig::one_token_local(), loss, bench);
  const auto r =
      run_case("CG", SlipstreamConfig::one_token_local(), loss, restart);

  for (const auto* res : {&b, &r}) {
    EXPECT_TRUE(res->workload.verified) << res->workload.detail;
    EXPECT_TRUE(res->audit_ok)
        << (res->audit_violations.empty() ? ""
                                          : res->audit_violations.front());
    EXPECT_GE(res->slip.recoveries, 1u);
  }
  EXPECT_EQ(b.slip.restarts, 0u);
  EXPECT_GT(r.slip.restarts, 0u);
  EXPECT_GT(b.slip.benched_barriers, 0u);
  EXPECT_LT(r.slip.benched_barriers, b.slip.benched_barriers);
}

TEST(RecoveryStressTest, WatchdogDiagnosesInjectedHang) {
  // An A-stream parked with no token or poison on the way would sit
  // until the end-of-run backstop; with the watchdog armed it must be
  // diagnosed as a hang, kicked into recovery, and the run must finish
  // verified with a structured report on file.
  RunKnobs knobs;
  knobs.divergence = 2;
  knobs.watchdog = 20000;
  knobs.policy = rt::RecoveryPolicy::kRestart;
  const auto res = run_case(
      "CG", SlipstreamConfig::one_token_local(),
      {.kind = FaultKind::kAStreamHang, .node = 0, .visit = 2}, knobs);
  EXPECT_EQ(res.faults_injected, 1u);
  EXPECT_GE(res.slip.watchdog_trips, 1u);
  EXPECT_FALSE(res.watchdog_reports.empty());
  EXPECT_GE(res.slip.recoveries, 1u);
  EXPECT_TRUE(res.workload.verified) << res.workload.detail;
  EXPECT_TRUE(res.audit_ok)
      << (res.audit_violations.empty() ? "" : res.audit_violations.front());
}

TEST(RecoveryStressTest, ChronicDivergenceDemotesAndStaysNearSingleMode) {
  // A CMP whose R-stream token wire is permanently broken diverges in
  // every region. With degradation on, the controller must demote it to
  // single-stream, after which the machine must not run meaningfully
  // slower than plain single mode (the healthy CMP may still help).
  const FaultPlan loss{
      .kind = FaultKind::kRStreamTokenLoss, .node = 1, .visit = 1};
  RunKnobs knobs;
  knobs.divergence = 1;
  knobs.watchdog = 50000;
  knobs.policy = rt::RecoveryPolicy::kRestart;
  knobs.degrade = {.enabled = true, .demote_after = 1, .probation = 1000};
  const auto degraded =
      run_case("CG", SlipstreamConfig::one_token_local(), loss, knobs);
  EXPECT_GE(degraded.slip.demotions, 1u);
  EXPECT_TRUE(degraded.workload.verified) << degraded.workload.detail;
  EXPECT_TRUE(degraded.audit_ok)
      << (degraded.audit_violations.empty()
              ? ""
              : degraded.audit_violations.front());

  RunKnobs single;
  single.mode = rt::ExecutionMode::kSingle;
  const auto base = run_case("CG", SlipstreamConfig::one_token_local(),
                             FaultPlan{}, single);
  EXPECT_TRUE(base.workload.verified);
  EXPECT_LE(static_cast<double>(degraded.cycles),
            static_cast<double>(base.cycles) * 1.05);
}

TEST(RecoveryStressTest, ProbationRepromotesACleanPair) {
  // Demotion must not be a life sentence: with a transient fault (the
  // one-shot recover-in-consume) and a short probation window, a demoted
  // CMP must be re-promoted and finish the run back in slipstream mode.
  RunKnobs knobs;
  knobs.divergence = 2;
  knobs.policy = rt::RecoveryPolicy::kRestart;
  knobs.degrade = {.enabled = true, .demote_after = 1, .probation = 2};
  const auto res = run_case(
      "CG", SlipstreamConfig::zero_token_global(),
      {.kind = FaultKind::kRecoverInConsume, .node = 0, .visit = 1}, knobs);
  EXPECT_TRUE(res.workload.verified) << res.workload.detail;
  EXPECT_TRUE(res.audit_ok)
      << (res.audit_violations.empty() ? "" : res.audit_violations.front());
  EXPECT_GE(res.slip.demotions, 1u);
  EXPECT_GE(res.slip.promotions, 1u);
}

TEST(RecoveryStressTest, RestartBudgetExhaustionFallsBackToBench) {
  // With a zero restart budget the restart policy must degenerate to
  // the bench behavior: recoveries happen, no restart is attempted, and
  // the diverged A-stream's forfeited barriers are counted.
  const FaultPlan loss{
      .kind = FaultKind::kRStreamTokenLoss, .node = 0, .visit = 2};
  auto factory = apps::make_workload("CG", apps::AppScale::kTiny, {});
  core::ExperimentConfig ec;
  ec.machine.ncmp = 2;
  ec.runtime.mode = rt::ExecutionMode::kSlipstream;
  ec.runtime.slip = SlipstreamConfig::one_token_local();
  ec.runtime.fault = loss;
  ec.runtime.audit = true;
  ec.runtime.recovery = rt::RecoveryPolicy::kRestart;
  ec.runtime.restart_budget = 0;
  ec.runtime.divergence_threshold = 2;
  ec.runtime.watchdog_cycles = 50000;
  const auto res = core::run_experiment(ec, factory);
  EXPECT_TRUE(res.workload.verified) << res.workload.detail;
  EXPECT_TRUE(res.audit_ok)
      << (res.audit_violations.empty() ? "" : res.audit_violations.front());
  EXPECT_EQ(res.slip.restarts, 0u);
  EXPECT_GE(res.slip.recoveries, 1u);
  EXPECT_GT(res.slip.benched_barriers, 0u);
}

}  // namespace
}  // namespace ssomp::slip
