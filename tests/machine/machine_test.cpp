#include <gtest/gtest.h>

#include "machine/machine.hpp"

namespace ssomp::machine {
namespace {

TEST(MachineTest, PaperTopologySixteenCmps) {
  Machine m((MachineConfig{}));
  EXPECT_EQ(m.ncmp(), 16);
  EXPECT_EQ(m.ncpus(), 32);
  EXPECT_EQ(m.engine().cpu_count(), 32);
}

TEST(MachineTest, CpuToNodeMapping) {
  MachineConfig mc;
  mc.ncmp = 4;
  Machine m(mc);
  EXPECT_EQ(m.node_of(0), 0);
  EXPECT_EQ(m.node_of(1), 0);
  EXPECT_EQ(m.node_of(6), 3);
  EXPECT_EQ(m.r_cpu_of(2), 4);
  EXPECT_EQ(m.a_cpu_of(2), 5);
}

TEST(MachineTest, PairsWiredToCpus) {
  MachineConfig mc;
  mc.ncmp = 2;
  Machine m(mc);
  EXPECT_EQ(m.pair(0).r_cpu(), 0);
  EXPECT_EQ(m.pair(0).a_cpu(), 1);
  EXPECT_EQ(m.pair(1).r_cpu(), 2);
  EXPECT_EQ(m.pair(1).a_cpu(), 3);
  // Mailboxes live in the runtime arena on distinct lines.
  EXPECT_TRUE(mem::AddrSpace::is_runtime(m.pair(0).mailbox_addr()));
  EXPECT_NE(m.pair(0).mailbox_addr(), m.pair(1).mailbox_addr());
}

TEST(MachineTest, CpuNamesEncodeTopology) {
  MachineConfig mc;
  mc.ncmp = 2;
  Machine m(mc);
  EXPECT_EQ(m.cpu(0).name(), "n0.p0");
  EXPECT_EQ(m.cpu(3).name(), "n1.p1");
}

}  // namespace
}  // namespace ssomp::machine
